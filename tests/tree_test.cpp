// Tests for the hierarchy and the interaction lists — including the paper's
// headline counts: 125-box near field, 875/189 interactive fields, the
// 1206-offset sibling union, the 1331 offset cube, and the 98 + 91 = 189
// supernode decomposition.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "hfmm/tree/active_set.hpp"
#include "hfmm/tree/hierarchy.hpp"
#include "hfmm/tree/interaction_lists.hpp"
#include "hfmm/tree/refinement.hpp"

namespace hfmm::tree {
namespace {

Hierarchy unit_hierarchy(int depth) { return Hierarchy(Box3{}, depth); }

TEST(HierarchyTest, BasicGeometry) {
  const Hierarchy h = unit_hierarchy(3);
  EXPECT_EQ(h.depth(), 3);
  EXPECT_EQ(h.boxes_per_side(0), 1);
  EXPECT_EQ(h.boxes_per_side(3), 8);
  EXPECT_EQ(h.boxes_at(3), 512u);
  EXPECT_DOUBLE_EQ(h.side_at(0), 1.0);
  EXPECT_DOUBLE_EQ(h.side_at(3), 0.125);
}

TEST(HierarchyTest, RejectsNonCube) {
  EXPECT_THROW(Hierarchy(Box3{{0, 0, 0}, {1, 2, 1}}, 2), std::invalid_argument);
  EXPECT_THROW(Hierarchy(Box3{}, -1), std::invalid_argument);
}

TEST(HierarchyTest, FlatIndexRoundtrip) {
  const Hierarchy h = unit_hierarchy(4);
  for (std::size_t f = 0; f < h.boxes_at(4); f += 7) {
    const BoxCoord c = h.coord_of(4, f);
    EXPECT_EQ(h.flat_index(4, c), f);
  }
}

TEST(HierarchyTest, FlatIndexIsXFastest) {
  const Hierarchy h = unit_hierarchy(2);
  EXPECT_EQ(h.flat_index(2, {1, 0, 0}), 1u);
  EXPECT_EQ(h.flat_index(2, {0, 1, 0}), 4u);
  EXPECT_EQ(h.flat_index(2, {0, 0, 1}), 16u);
}

TEST(HierarchyTest, CenterOfBoxes) {
  const Hierarchy h = unit_hierarchy(1);
  EXPECT_EQ(h.center(0, {0, 0, 0}), (Vec3{0.5, 0.5, 0.5}));
  EXPECT_EQ(h.center(1, {0, 0, 0}), (Vec3{0.25, 0.25, 0.25}));
  EXPECT_EQ(h.center(1, {1, 1, 1}), (Vec3{0.75, 0.75, 0.75}));
}

TEST(HierarchyTest, LeafOfClampsToDomain) {
  const Hierarchy h = unit_hierarchy(2);
  EXPECT_EQ(h.leaf_of({0.1, 0.1, 0.1}), (BoxCoord{0, 0, 0}));
  EXPECT_EQ(h.leaf_of({0.9, 0.9, 0.9}), (BoxCoord{3, 3, 3}));
  // Outside points clamp instead of crashing; 0.5 sits exactly on the
  // boundary between boxes 1 and 2 and floors into box 2.
  EXPECT_EQ(h.leaf_of({-5, 0.5, 2.0}), (BoxCoord{0, 2, 3}));
}

TEST(HierarchyTest, ParentChildOctantRelations) {
  for (int o = 0; o < 8; ++o) {
    const BoxCoord parent{3, 5, 2};
    const BoxCoord child = Hierarchy::child_of(parent, o);
    EXPECT_EQ(Hierarchy::parent_of(child), parent);
    EXPECT_EQ(Hierarchy::octant_of(child), o);
  }
}

TEST(HierarchyTest, OctantOffsetsAreHalfUnit) {
  for (int o = 0; o < 8; ++o) {
    const Vec3 off = Hierarchy::octant_offset(o);
    EXPECT_DOUBLE_EQ(std::abs(off.x), 0.5);
    EXPECT_DOUBLE_EQ(std::abs(off.y), 0.5);
    EXPECT_DOUBLE_EQ(std::abs(off.z), 0.5);
  }
  // Octant 0 is the low corner.
  EXPECT_EQ(Hierarchy::octant_offset(0), (Vec3{-0.5, -0.5, -0.5}));
}

TEST(HierarchyTest, CubeContainingIsCube) {
  const Box3 b{{0, 0, 0}, {2, 1, 0.5}};
  const Box3 c = cube_containing(b);
  const Vec3 e = c.extent();
  EXPECT_NEAR(e.x, e.y, 1e-12);
  EXPECT_NEAR(e.y, e.z, 1e-12);
  EXPECT_GE(e.x, 2.0);
}

TEST(HierarchyTest, OptimalDepthScalesWithN) {
  EXPECT_EQ(optimal_depth(10, 16.0), 0);
  EXPECT_EQ(optimal_depth(16 * 8, 16.0), 1);
  EXPECT_EQ(optimal_depth(16 * 64, 16.0), 2);
  // Doubling N by 8 adds one level.
  const int d1 = optimal_depth(100000, 24.0);
  EXPECT_EQ(optimal_depth(800000, 24.0), d1 + 1);
  EXPECT_THROW(optimal_depth(100, 0.0), std::invalid_argument);
}

TEST(NearFieldTest, CountsMatchPaper) {
  // (2d+1)^3: 27 for d=1, 125 for d=2 (paper Section 2.1).
  EXPECT_EQ(near_field_offsets(1).size(), 27u);
  EXPECT_EQ(near_field_offsets(2).size(), 125u);
  EXPECT_EQ(near_field_offsets(3).size(), 343u);
}

TEST(NearFieldTest, HalfOffsetsPartitionNeighbors) {
  for (int d : {1, 2}) {
    const auto half = near_field_half_offsets(d);
    const auto full = near_field_offsets(d);
    EXPECT_EQ(half.size(), (full.size() - 1) / 2);  // 62 for d = 2
    std::set<std::tuple<int, int, int>> seen;
    for (const Offset& o : half) {
      seen.insert({o.dx, o.dy, o.dz});
      seen.insert({-o.dx, -o.dy, -o.dz});
    }
    EXPECT_EQ(seen.size(), full.size() - 1);  // H u -H covers all, no self
  }
}

TEST(NearFieldTest, SixtyTwoBoxInteractionsForD2) {
  EXPECT_EQ(near_field_half_offsets(2).size(), 62u);  // paper Figure 10
}

class InteractiveFieldTest : public ::testing::TestWithParam<int> {};

TEST_P(InteractiveFieldTest, CountPerOctant) {
  const int d = GetParam();
  const std::size_t expected = 7u * (2 * d + 1) * (2 * d + 1) * (2 * d + 1);
  for (int o = 0; o < 8; ++o) {
    const auto offsets = interactive_offsets(o, d);
    EXPECT_EQ(offsets.size(), expected) << "octant " << o;
    // No offset may be inside the near field.
    for (const Offset& off : offsets)
      EXPECT_GT(std::max({std::abs(off.dx), std::abs(off.dy),
                          std::abs(off.dz)}),
                d);
    // No duplicates.
    std::set<std::tuple<int, int, int>> s;
    for (const Offset& off : offsets) s.insert({off.dx, off.dy, off.dz});
    EXPECT_EQ(s.size(), offsets.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Separations, InteractiveFieldTest,
                         ::testing::Values(1, 2, 3));

TEST(InteractiveFieldTest, PaperCounts875And189) {
  EXPECT_EQ(interactive_offsets(0, 2).size(), 875u);  // d = 2 (paper)
  EXPECT_EQ(interactive_offsets(0, 1).size(), 189u);  // d = 1
}

TEST(InteractiveFieldTest, OctantRangesMatchPaper) {
  // Octant 0 (even parity): offsets in [-4, 5] per axis; octant 7: [-5, 4]
  // (the paper's [-5+i, 4+i] ranges).
  const auto o0 = interactive_offsets(0, 2);
  const auto o7 = interactive_offsets(7, 2);
  auto minmax = [](const std::vector<Offset>& v) {
    int lo = 99, hi = -99;
    for (const Offset& o : v) {
      lo = std::min({lo, o.dx, o.dy, o.dz});
      hi = std::max({hi, o.dx, o.dy, o.dz});
    }
    return std::pair{lo, hi};
  };
  EXPECT_EQ(minmax(o0), (std::pair{-4, 5}));
  EXPECT_EQ(minmax(o7), (std::pair{-5, 4}));
}

TEST(InteractiveFieldTest, SiblingUnionHas1206Offsets) {
  const auto u = sibling_union_offsets(2);
  EXPECT_EQ(u.size(), 1206u);  // 11^3 - 5^3, paper Section 3.3.2
  // And equals the actual union over the 8 octants.
  std::set<std::tuple<int, int, int>> uni;
  for (int o = 0; o < 8; ++o)
    for (const Offset& off : interactive_offsets(o, 2))
      uni.insert({off.dx, off.dy, off.dz});
  EXPECT_EQ(uni.size(), 1206u);
}

TEST(InteractiveFieldTest, OffsetCubeIndexIsABijection) {
  const int d = 2;
  EXPECT_EQ(offset_cube_size(d), 1331u);  // 11^3, the paper's matrix count
  std::set<std::size_t> seen;
  for (int dz = -5; dz <= 5; ++dz)
    for (int dy = -5; dy <= 5; ++dy)
      for (int dx = -5; dx <= 5; ++dx) {
        const std::size_t i = offset_cube_index({dx, dy, dz}, d);
        EXPECT_LT(i, 1331u);
        seen.insert(i);
      }
  EXPECT_EQ(seen.size(), 1331u);
}

TEST(SupernodeTest, EffectiveCountIs189) {
  // The paper's headline: supernodes reduce the effective interactive field
  // from 875 to 189 (98 complete octets + 91 leftover children).
  for (int o = 0; o < 8; ++o) {
    const auto entries = supernode_interactive(o, 2);
    EXPECT_EQ(entries.size(), 189u) << "octant " << o;
    std::size_t parents = 0, children = 0;
    for (const auto& e : entries)
      (e.source_level_up == 1 ? parents : children)++;
    EXPECT_EQ(parents, 98u);
    EXPECT_EQ(children, 91u);
  }
}

TEST(SupernodeTest, FlatteningRecoversFullInteractiveField) {
  // Expanding every parent entry into its 8 children must reproduce the
  // plain 875-offset interactive field exactly.
  for (int oct : {0, 3, 7}) {
    const int px = oct & 1, py = (oct >> 1) & 1, pz = (oct >> 2) & 1;
    std::set<std::tuple<int, int, int>> flat;
    for (const auto& e : supernode_interactive(oct, 2)) {
      if (e.source_level_up == 0) {
        flat.insert({e.offset.dx, e.offset.dy, e.offset.dz});
      } else {
        for (int bz = 0; bz <= 1; ++bz)
          for (int by = 0; by <= 1; ++by)
            for (int bx = 0; bx <= 1; ++bx)
              flat.insert({2 * e.offset.dx + bx - px,
                           2 * e.offset.dy + by - py,
                           2 * e.offset.dz + bz - pz});
      }
    }
    std::set<std::tuple<int, int, int>> expect;
    for (const Offset& o : interactive_offsets(oct, 2))
      expect.insert({o.dx, o.dy, o.dz});
    EXPECT_EQ(flat, expect) << "octant " << oct;
  }
}

TEST(InteractionListTest, InvalidArgumentsThrow) {
  EXPECT_THROW(near_field_offsets(0), std::invalid_argument);
  EXPECT_THROW(interactive_offsets(-1, 2), std::invalid_argument);
  EXPECT_THROW(interactive_offsets(8, 2), std::invalid_argument);
  EXPECT_THROW(supernode_interactive(0, 0), std::invalid_argument);
}

// ------------------------------------------------- adaptive refinement (§15)

// An occupancy map (deepest-level flat index -> body count) turned into the
// full active sets plus subtree counts the refinement builders consume.
struct RefineFixture {
  Hierarchy hier;
  ActiveLevels act;
  std::vector<std::uint32_t> leaf_counts;
  std::vector<std::vector<std::uint32_t>> counts;
};

RefineFixture make_refine_fixture(
    int depth, const std::map<std::uint32_t, std::uint32_t>& occupancy) {
  RefineFixture f{unit_hierarchy(depth), {}, {}, {}};
  std::vector<std::uint32_t> occ;
  occ.reserve(occupancy.size());
  for (const auto& [flat, n] : occupancy) occ.push_back(flat);
  build_active_levels(f.hier, occ, f.act);
  const std::vector<std::uint32_t>& lv =
      f.act.levels[static_cast<std::size_t>(depth)].boxes;
  f.leaf_counts.resize(lv.size());
  for (std::size_t i = 0; i < lv.size(); ++i)
    f.leaf_counts[i] = occupancy.at(lv[i]);
  build_subtree_counts(f.hier, f.act, f.leaf_counts, f.counts);
  return f;
}

RefineFixture make_uniform_fixture(int depth, std::uint32_t per_leaf) {
  std::map<std::uint32_t, std::uint32_t> occ;
  const std::size_t boxes = std::size_t{1} << (3 * depth);
  for (std::uint32_t flat = 0; flat < boxes; ++flat) occ[flat] = per_leaf;
  return make_refine_fixture(depth, occ);
}

// One dense cluster (every deepest-level leaf under one level-2 box) plus a
// sparse background of single bodies along the opposite face diagonal.
RefineFixture make_clustered_fixture(int depth, std::uint32_t core_per_leaf) {
  std::map<std::uint32_t, std::uint32_t> occ;
  const Hierarchy hier = unit_hierarchy(depth);
  const int side = 1 << depth;
  const int core = side / 4;  // one level-2 octant subtree
  for (int z = 0; z < core; ++z)
    for (int y = 0; y < core; ++y)
      for (int x = 0; x < core; ++x)
        occ[hier.flat_index(depth, {x, y, z})] = core_per_leaf;
  for (int i = side / 2; i < side; i += 2)
    occ[hier.flat_index(depth, {i, i, i})] = 1;
  return make_refine_fixture(depth, occ);
}

LeafFront mark_front(const RefineFixture& f, int ncrit) {
  LeafFront front;
  const std::vector<Offset> near = near_field_offsets(2);
  build_leaf_front(f.hier, f.act, f.counts, ncrit, 2, near, front);
  return front;
}

TEST(RefinementTest, UniformFrontCollapsesToSingleLevel) {
  // ncrit one full level above the per-leaf count: every level-2 box holds
  // exactly ncrit bodies, so the front is the uniform level-2 cut.
  const RefineFixture f = make_uniform_fixture(3, 4);
  const LeafFront front = mark_front(f, 4 * 8);
  EXPECT_EQ(front.leaves(), 64u);
  EXPECT_EQ(front.max_leaf_level, 2);
  for (std::size_t li = 0; li < front.leaves(); ++li)
    EXPECT_EQ(front.leaf_level[li], 2);
  // Deepest level fully pruned.
  for (const std::uint8_t s : front.state[3]) EXPECT_EQ(s, LeafFront::kBelow);
  // A threshold below the leaf count keeps every deepest box a leaf.
  const LeafFront fine = mark_front(f, 3);
  EXPECT_EQ(fine.leaves(), 512u);
  EXPECT_EQ(fine.max_leaf_level, 3);
}

TEST(RefinementTest, FrontLeavesPartitionTheBodies) {
  for (const bool clustered : {false, true}) {
    const RefineFixture f = clustered ? make_clustered_fixture(4, 12)
                                      : make_uniform_fixture(3, 5);
    for (const int ncrit : {8, 32, 128}) {
      const LeafFront front = mark_front(f, ncrit);
      std::uint64_t total = 0, expect = 0;
      for (std::size_t li = 0; li < front.leaves(); ++li) {
        const int l = front.leaf_level[li];
        const std::int32_t ai =
            f.act.levels[static_cast<std::size_t>(l)]
                .dense_to_active[front.leaf_flat[li]];
        ASSERT_GE(ai, 0);
        total += f.counts[static_cast<std::size_t>(l)]
                         [static_cast<std::size_t>(ai)];
      }
      for (const std::uint32_t c : f.leaf_counts) expect += c;
      EXPECT_EQ(total, expect) << "ncrit " << ncrit;
    }
  }
}

TEST(RefinementTest, ClusteredFrontRefinesCoreOnly) {
  const RefineFixture f = make_clustered_fixture(4, 12);
  const LeafFront front = mark_front(f, 16);
  // The core (12 bodies x 4^3 deepest leaves under one octant) must refine
  // to the cap while the singleton background stays shallow.
  EXPECT_EQ(front.max_leaf_level, 4);
  int shallowest = front.depth;
  for (std::size_t li = 0; li < front.leaves(); ++li)
    shallowest = std::min(shallowest, front.leaf_level[li]);
  EXPECT_LT(shallowest, 4);
  EXPECT_GE(shallowest, front.min_level);
}

// Brute-force U-list of a front: every unordered pair of distinct leaves
// whose boxes are colleagues (chebyshev <= separation at the coarser side,
// the deeper leaf mapped through its ancestor). Level gaps >= 2 are a
// balance violation and reported as such.
std::set<std::pair<std::uint64_t, std::uint64_t>> brute_force_pairs(
    const RefineFixture& f, const LeafFront& front, bool* balanced) {
  std::set<std::pair<std::uint64_t, std::uint64_t>> pairs;
  *balanced = true;
  const auto key = [](int l, std::uint32_t flat) {
    return (static_cast<std::uint64_t>(l) << 40) | flat;
  };
  for (std::size_t a = 0; a < front.leaves(); ++a) {
    for (std::size_t b = a + 1; b < front.leaves(); ++b) {
      int la = front.leaf_level[a], lb = front.leaf_level[b];
      std::uint32_t fa = front.leaf_flat[a], fb = front.leaf_flat[b];
      if (la > lb) {
        std::swap(la, lb);
        std::swap(fa, fb);
      }
      BoxCoord cb = f.hier.coord_of(lb, fb);
      for (int l = lb; l > la; --l) cb = Hierarchy::parent_of(cb);
      const BoxCoord ca = f.hier.coord_of(la, fa);
      const int cheb = std::max({std::abs(ca.ix - cb.ix),
                                 std::abs(ca.iy - cb.iy),
                                 std::abs(ca.iz - cb.iz)});
      if (cheb > 2) continue;
      if (lb - la >= 2) *balanced = false;
      pairs.insert({std::min(key(la, fa), key(lb, fb)),
                    std::max(key(la, fa), key(lb, fb))});
    }
  }
  return pairs;
}

TEST(RefinementTest, NearPairsCoverEveryAdjacencyExactlyOnce) {
  const RefineFixture f = make_clustered_fixture(4, 12);
  const std::vector<Offset> near = near_field_offsets(2);
  const std::vector<Offset> near_half = near_field_half_offsets(2);
  for (const int ncrit : {8, 16, 64}) {
    const LeafFront front = mark_front(f, ncrit);
    bool balanced = false;
    const auto expect = brute_force_pairs(f, front, &balanced);
    // The balance ripple's contract: no adjacency spans 2+ levels.
    EXPECT_TRUE(balanced) << "ncrit " << ncrit;
    const auto key = [](int l, std::uint32_t flat) {
      return (static_cast<std::uint64_t>(l) << 40) | flat;
    };
    std::set<std::pair<std::uint64_t, std::uint64_t>> got;
    std::size_t emitted = 0;
    for_each_near_pair(
        f.hier, f.act, front, near, near_half,
        [&](std::size_t li, int sl, std::uint32_t sa) {
          const std::uint64_t own =
              key(front.leaf_level[li], front.leaf_flat[li]);
          const std::uint64_t src = key(
              sl, f.act.levels[static_cast<std::size_t>(sl)].boxes[sa]);
          got.insert({std::min(own, src), std::max(own, src)});
          ++emitted;
        });
    EXPECT_EQ(got.size(), emitted) << "duplicate adjacency, ncrit " << ncrit;
    EXPECT_EQ(got, expect) << "ncrit " << ncrit;
  }
}

TEST(RefinementTest, CostSelectorAgreesWithOptimalDepthOnUniform) {
  // On uniform inputs the exact-pair cost model reduces to an occupancy
  // rule: it picks the level where mean occupancy crosses its break-even
  // (~4 bodies per leaf for k = 12 with supernodes, where pair flops and
  // translation flops balance) — exactly optimal_depth with that constant.
  RefinementCostParams params;
  const std::vector<Offset> near_half = near_field_half_offsets(2);
  for (const std::uint32_t per_leaf : {4u, 8u}) {
    const RefineFixture f = make_uniform_fixture(4, per_leaf);
    const std::size_t n = per_leaf * 4096;
    const int by_cost =
        select_uniform_depth(f.hier, f.act, f.counts, near_half, params);
    EXPECT_EQ(by_cost, optimal_depth(n, 4.0)) << per_leaf;
  }
}

TEST(RefinementTest, CostSelectorDivergesFromOccupancyOnClustered) {
  // Same body count as a uniform input whose mean occupancy picks level 3 —
  // but concentrated in one octant subtree, where exact pair counts demand
  // the full depth. Mean occupancy cannot see the difference.
  const RefineFixture f = make_clustered_fixture(5, 60);
  std::size_t n = 0;
  for (const std::uint32_t c : f.leaf_counts) n += c;
  RefinementCostParams params;
  const std::vector<Offset> near_half = near_field_half_offsets(2);
  const int by_cost =
      select_uniform_depth(f.hier, f.act, f.counts, near_half, params);
  EXPECT_GT(by_cost, optimal_depth(n, 8.0));
}

TEST(RefinementTest, AdaptiveFrontBeatsUniformOnClustered) {
  const RefineFixture f = make_clustered_fixture(4, 24);
  RefinementCostParams params;
  const std::vector<Offset> near = near_field_offsets(2);
  const std::vector<Offset> near_half = near_field_half_offsets(2);
  LeafFront scratch;
  const std::vector<int> ladder{8, 16, 32, 64, 128};
  const int ncrit = select_ncrit(f.hier, f.act, f.counts, near, near_half,
                                 params, ladder, 2, scratch);
  EXPECT_NE(std::find(ladder.begin(), ladder.end(), ncrit), ladder.end());
  LeafFront front;
  build_leaf_front(f.hier, f.act, f.counts, ncrit, 2, near, front);
  const RefinementCost adaptive =
      front_cost(f.hier, f.act, f.counts, front, near, near_half, params);
  const int h = select_uniform_depth(f.hier, f.act, f.counts, near_half,
                                     params);
  const RefinementCost uniform =
      uniform_cost(f.hier, f.act, f.counts, h, near_half, params);
  // The whole point of the ncrit front: strictly fewer modeled flops than
  // the best uniform cut — here by carrying far fewer expansion boxes —
  // with the near-pair count essentially unchanged (coarse background
  // leaves may pick up a handful of extra adjacencies).
  EXPECT_LT(adaptive.flops, uniform.flops);
  EXPECT_LT(adaptive.tree_boxes, uniform.tree_boxes);
  EXPECT_LE(adaptive.near_pairs, uniform.near_pairs + uniform.near_pairs / 50);
}

TEST(RefinementTest, WarmRemarkNoHeapGrowth) {
  const RefineFixture f = make_clustered_fixture(4, 12);
  const std::vector<Offset> near = near_field_offsets(2);
  LeafFront front;
  build_leaf_front(f.hier, f.act, f.counts, 16, 2, near, front);
  ActiveLevels pruned;
  std::vector<std::vector<std::uint8_t>> leaf_flags;
  build_front_levels(f.hier, f.act, front, pruned, leaf_flags);
  const std::size_t before = front.capacity_bytes() + pruned.capacity_bytes();
  build_leaf_front(f.hier, f.act, f.counts, 16, 2, near, front);
  build_front_levels(f.hier, f.act, front, pruned, leaf_flags);
  EXPECT_EQ(front.capacity_bytes() + pruned.capacity_bytes(), before);
}

TEST(RefinementTest, PrunedLevelsMatchFrontStates) {
  const RefineFixture f = make_clustered_fixture(4, 12);
  const LeafFront front = mark_front(f, 16);
  ActiveLevels pruned;
  std::vector<std::vector<std::uint8_t>> leaf_flags;
  build_front_levels(f.hier, f.act, front, pruned, leaf_flags);
  EXPECT_EQ(pruned.depth, front.max_leaf_level);
  std::size_t leaves_seen = 0;
  for (int l = 0; l <= pruned.depth; ++l) {
    const LevelActiveSet& pl = pruned.levels[static_cast<std::size_t>(l)];
    const LevelActiveSet& al = f.act.levels[static_cast<std::size_t>(l)];
    ASSERT_EQ(leaf_flags[static_cast<std::size_t>(l)].size(), pl.count());
    for (std::size_t i = 0; i < pl.count(); ++i) {
      const std::uint32_t flat = pl.boxes[i];
      const std::int32_t ai = al.dense_to_active[flat];
      ASSERT_GE(ai, 0);
      const std::uint8_t st =
          front.state[static_cast<std::size_t>(l)][static_cast<std::size_t>(
              ai)];
      EXPECT_NE(st, LeafFront::kBelow);
      const bool is_leaf = st == LeafFront::kLeaf;
      EXPECT_EQ(leaf_flags[static_cast<std::size_t>(l)][i] != 0, is_leaf);
      leaves_seen += is_leaf ? 1u : 0u;
    }
  }
  EXPECT_EQ(leaves_seen, front.leaves());
}

}  // namespace
}  // namespace hfmm::tree
