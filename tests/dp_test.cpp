// Tests for the data-parallel substrate: layouts, distributed grids, CSHIFT,
// the four halo strategies of Table 4, the multigrid embedding of Figure 7,
// replication strategies of Figures 8/9, and the coordinate sort of Fig. 5.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "hfmm/dp/halo.hpp"
#include "hfmm/dp/multigrid.hpp"
#include "hfmm/dp/replicate.hpp"
#include "hfmm/dp/sort.hpp"

namespace hfmm::dp {
namespace {

// Deterministic per-box payload so data movement errors are detectable.
double box_value(const tree::BoxCoord& c, std::size_t i) {
  return 1000.0 * c.iz + 100.0 * c.iy + 10.0 * c.ix + static_cast<double>(i);
}

void fill_grid(DistGrid& g) {
  const BlockLayout& l = g.layout();
  const std::int32_t n = l.boxes_per_side();
  for (std::int32_t z = 0; z < n; ++z)
    for (std::int32_t y = 0; y < n; ++y)
      for (std::int32_t x = 0; x < n; ++x) {
        auto v = g.at_global({x, y, z});
        for (std::size_t i = 0; i < g.k(); ++i) v[i] = box_value({x, y, z}, i);
      }
}

TEST(MachineTest, ConfigValidation) {
  EXPECT_TRUE((MachineConfig{1, 1, 1}).valid());
  EXPECT_TRUE((MachineConfig{4, 2, 1}).valid());
  EXPECT_FALSE((MachineConfig{3, 2, 1}).valid());
  EXPECT_THROW(Machine(MachineConfig{0, 1, 1}), std::invalid_argument);
}

TEST(MachineTest, StatsArithmetic) {
  CommStats a{10, 20, 3, 1, 0, 0, 0.5}, b{5, 5, 1, 1, 0, 0, 0.25};
  a += b;
  EXPECT_EQ(a.off_vu_bytes, 15u);
  EXPECT_DOUBLE_EQ(a.modeled_seconds, 0.75);
  const CommStats d = a - b;
  EXPECT_EQ(d.off_vu_bytes, 10u);
  EXPECT_EQ(d.messages, 3u);
  EXPECT_DOUBLE_EQ(d.modeled_seconds, 0.5);
}

TEST(MachineTest, ChargeParallelTransferUsesCriticalPath) {
  Machine machine({2, 2, 2});  // 8 VUs
  machine.cost_model().seconds_per_message = 1.0;
  machine.cost_model().seconds_per_off_vu_byte = 0.1;
  machine.cost_model().seconds_per_local_byte = 0.01;
  machine.charge_parallel_transfer(/*off=*/800, /*msgs=*/8, /*local=*/80);
  // Per-VU share: 1 message, 100 off bytes, 10 local bytes.
  EXPECT_NEAR(machine.estimated_comm_seconds(), 1.0 + 10.0 + 0.1, 1e-12);
  EXPECT_EQ(machine.stats().off_vu_bytes, 800u);
}

TEST(MachineTest, CostModelPresets) {
  const CostModel cm5 = CostModel::cm5e_like();
  const CostModel modern = CostModel::modern_cluster();
  // Modern machines: lower latency, vastly higher bandwidth.
  EXPECT_LT(modern.seconds_per_message, cm5.seconds_per_message);
  EXPECT_LT(modern.seconds_per_off_vu_byte, cm5.seconds_per_off_vu_byte);
}

TEST(LayoutTest, BitSplitsMatchFigure4) {
  // 16 boxes per side over a 4 x 2 x 1 VU grid: subgrids 4 x 8 x 16.
  const BlockLayout l(16, {4, 2, 1});
  EXPECT_EQ(l.vu_bits_x(), 2);
  EXPECT_EQ(l.vu_bits_y(), 1);
  EXPECT_EQ(l.vu_bits_z(), 0);
  EXPECT_EQ(l.local_bits_x(), 2);
  EXPECT_EQ(l.sub_x(), 4);
  EXPECT_EQ(l.sub_y(), 8);
  EXPECT_EQ(l.sub_z(), 16);
  EXPECT_EQ(l.boxes_per_vu(), 512u);
}

TEST(LayoutTest, HomeGlobalRoundtrip) {
  const BlockLayout l(8, {2, 2, 2});
  for (std::int32_t z = 0; z < 8; ++z)
    for (std::int32_t y = 0; y < 8; ++y)
      for (std::int32_t x = 0; x < 8; ++x) {
        const BoxHome h = l.home_of({x, y, z});
        EXPECT_EQ(l.global_of(h), (tree::BoxCoord{x, y, z}));
        EXPECT_LT(h.vu, 8u);
      }
}

TEST(LayoutTest, SortKeysAreDenseAndVuMajor) {
  const BlockLayout l(4, {2, 1, 1});
  std::set<std::uint64_t> keys;
  for (std::int32_t z = 0; z < 4; ++z)
    for (std::int32_t y = 0; y < 4; ++y)
      for (std::int32_t x = 0; x < 4; ++x) {
        const std::uint64_t k = l.sort_key({x, y, z});
        EXPECT_LT(k, 64u);
        keys.insert(k);
        // High bits are the VU rank: boxes on VU 0 sort before VU 1.
        EXPECT_EQ(k / l.boxes_per_vu(), l.home_of({x, y, z}).vu);
      }
  EXPECT_EQ(keys.size(), 64u);
}

TEST(LayoutTest, RejectsBadShapes) {
  EXPECT_THROW(BlockLayout(12, {2, 2, 2}), std::invalid_argument);  // not 2^k
  EXPECT_THROW(BlockLayout(4, {8, 1, 1}), std::invalid_argument);  // VUs > boxes
}

TEST(DistGridTest, GlobalLocalConsistency) {
  const BlockLayout l(4, {2, 2, 1});
  DistGrid g(l, 3);
  fill_grid(g);
  for (std::int32_t z = 0; z < 4; ++z)
    for (std::int32_t y = 0; y < 4; ++y)
      for (std::int32_t x = 0; x < 4; ++x) {
        const BoxHome h = l.home_of({x, y, z});
        const auto via_local = g.at(h.vu, h.lx, h.ly, h.lz);
        const auto via_global = g.at_global({x, y, z});
        EXPECT_EQ(via_local.data(), via_global.data());
        EXPECT_DOUBLE_EQ(via_local[1], box_value({x, y, z}, 1));
      }
}

class CshiftTest
    : public ::testing::TestWithParam<std::tuple<int, std::int32_t>> {};

TEST_P(CshiftTest, MatchesReference) {
  const auto [axis, offset] = GetParam();
  Machine machine({2, 2, 1});
  const BlockLayout l(8, machine.config());
  DistGrid src(l, 2), dst(l, 2);
  fill_grid(src);
  cshift(machine, src, dst, axis, offset);
  for (std::int32_t z = 0; z < 8; ++z)
    for (std::int32_t y = 0; y < 8; ++y)
      for (std::int32_t x = 0; x < 8; ++x) {
        tree::BoxCoord s{x, y, z};
        auto& comp = axis == 0 ? s.ix : (axis == 1 ? s.iy : s.iz);
        comp = ((comp - offset) % 8 + 8) % 8;
        EXPECT_DOUBLE_EQ(dst.at_global({x, y, z})[0], box_value(s, 0));
      }
  EXPECT_EQ(machine.stats().cshift_steps, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AxesOffsets, CshiftTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, -1, 3, 8, -5)));

TEST(CshiftTest, CountsOffVuTraffic) {
  Machine machine({2, 1, 1});
  const BlockLayout l(8, machine.config());
  DistGrid src(l, 1), dst(l, 1);
  machine.reset_stats();
  cshift(machine, src, dst, 0, 1);
  // Unit shift along x with subgrid 4: one of four x-slices crosses per
  // block: 2 crossing slices of 64 boxes... exactly 2*64 = 128 boxes? No:
  // indices 0..7, sources i-1: crossing at i=0 (src 7, other VU) and i=4
  // (src 3): 2 slices x 64 boxes/slice = 128 boxes.
  EXPECT_EQ(machine.stats().off_vu_bytes, 128u * sizeof(double));
  EXPECT_EQ(machine.stats().local_bytes, (512u - 128u) * sizeof(double));
}

TEST(CshiftTest, FullWrapIsLocal) {
  Machine machine({2, 1, 1});
  const BlockLayout l(4, machine.config());
  DistGrid src(l, 1), dst(l, 1);
  cshift(machine, src, dst, 0, 4);  // full circle
  EXPECT_EQ(machine.stats().off_vu_bytes, 0u);
}

class HaloStrategyTest : public ::testing::TestWithParam<HaloStrategy> {};

TEST_P(HaloStrategyTest, ProducesCorrectPeriodicHalo) {
  Machine machine({2, 2, 2});
  const BlockLayout l(8, machine.config());
  DistGrid grid(l, 2);
  fill_grid(grid);
  HaloGrid halo(l, 2, 2);
  fill_halo(machine, grid, halo, GetParam());
  // Every halo cell must equal the periodic neighbor it represents.
  for (std::size_t vu = 0; vu < machine.vus(); ++vu) {
    const tree::BoxCoord origin = l.global_of({vu, 0, 0, 0});
    for (std::int32_t hz = 0; hz < halo.ext_z(); ++hz)
      for (std::int32_t hy = 0; hy < halo.ext_y(); ++hy)
        for (std::int32_t hx = 0; hx < halo.ext_x(); ++hx) {
          const auto wrap = [](std::int32_t v) { return ((v % 8) + 8) % 8; };
          const tree::BoxCoord src{wrap(origin.ix + hx - 2),
                                   wrap(origin.iy + hy - 2),
                                   wrap(origin.iz + hz - 2)};
          EXPECT_DOUBLE_EQ(halo.at(vu, hx, hy, hz)[1], box_value(src, 1))
              << to_string(GetParam()) << " vu=" << vu << " h=(" << hx << ","
              << hy << "," << hz << ")";
        }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, HaloStrategyTest,
    ::testing::Values(HaloStrategy::kDirectCshift,
                      HaloStrategy::kLinearizedCshift,
                      HaloStrategy::kGhostSections, HaloStrategy::kSubgridSnake),
    [](const auto& info) {
      std::string s = to_string(info.param);
      for (char& c : s)
        if (c == '-' || c == '/') c = '_';
      return s;
    });

TEST(HaloTest, Table4OrderingOfDataMotion) {
  // The paper's Table 4 ordering: aliased (section) fetches move far less
  // data than linearized whole-grid CSHIFTs, which move less than direct
  // per-offset CSHIFT sequences.
  const MachineConfig mc{2, 2, 2};
  auto run = [&](HaloStrategy s) {
    Machine machine(mc);
    const BlockLayout l(8, mc);
    DistGrid grid(l, 2);
    fill_grid(grid);
    HaloGrid halo(l, 2, 2);
    fill_halo(machine, grid, halo, s);
    return machine.stats();
  };
  const CommStats direct = run(HaloStrategy::kDirectCshift);
  const CommStats linear = run(HaloStrategy::kLinearizedCshift);
  const CommStats sections = run(HaloStrategy::kGhostSections);
  const CommStats snake = run(HaloStrategy::kSubgridSnake);
  EXPECT_GT(direct.off_vu_bytes, linear.off_vu_bytes);
  EXPECT_GT(linear.off_vu_bytes, snake.off_vu_bytes);
  EXPECT_GE(snake.off_vu_bytes, sections.off_vu_bytes);
  // The subgrid snake uses far fewer primitive operations than the
  // linearized whole-grid walk.
  EXPECT_LT(snake.cshift_steps, linear.cshift_steps);
  // Sections fetch exactly the ghost volume.
  const std::size_t ghost_cells = 8u * (8 * 8 * 8 - 4 * 4 * 4);
  EXPECT_EQ(sections.off_vu_bytes + sections.local_bytes -
                8u * 64 * 2 * sizeof(double),  // minus interior copy
            ghost_cells * 2 * sizeof(double));
}

TEST(HaloTest, RejectsGhostDeeperThanSubgrid) {
  Machine machine({4, 4, 4});
  const BlockLayout l(8, machine.config());  // subgrids 2^3
  DistGrid grid(l, 1);
  HaloGrid halo(l, 1, 3);
  EXPECT_THROW(fill_halo(machine, grid, halo, HaloStrategy::kGhostSections),
               std::invalid_argument);
}

TEST(MultigridTest, SectionGeometry) {
  const MachineConfig mc{2, 2, 2};
  const BlockLayout leaf(16, mc);
  const MultigridArray mg(leaf, 4, 3);
  EXPECT_EQ(mg.section_stride(4), 1);   // leaf
  EXPECT_EQ(mg.section_start(4), 0);
  EXPECT_EQ(mg.section_stride(3), 2);
  EXPECT_EQ(mg.section_start(3), 1);
  EXPECT_EQ(mg.section_stride(2), 4);
  EXPECT_EQ(mg.section_start(2), 2);
  EXPECT_EQ(mg.section_stride(0), 16);
  EXPECT_EQ(mg.section_start(0), 8);
}

TEST(MultigridTest, LevelsDoNotCollideInLayer1) {
  // Distinct (level, box) pairs map to distinct storage positions.
  const MachineConfig mc{1, 1, 1};
  const BlockLayout leaf(16, mc);
  MultigridArray mg(leaf, 4, 1);
  mg.fill(0.0);
  for (int l = 0; l < 4; ++l) {
    const std::int32_t n = 1 << l;
    for (std::int32_t z = 0; z < n; ++z)
      for (std::int32_t y = 0; y < n; ++y)
        for (std::int32_t x = 0; x < n; ++x) mg.at(l, {x, y, z})[0] += 1.0;
  }
  // Total writes = sum of boxes over levels 0..3; all cells must be 0 or 1.
  double total = 0;
  for (std::size_t vu = 0; vu < 1; ++vu) {
    for (double v : mg.coarse_layer().vu_data(vu)) {
      EXPECT_TRUE(v == 0.0 || v == 1.0);
      total += v;
    }
  }
  EXPECT_DOUBLE_EQ(total, 1 + 8 + 64 + 512);
}

class EmbedMethodTest : public ::testing::TestWithParam<EmbedMethod> {};

TEST_P(EmbedMethodTest, EmbedExtractRoundtripAllLevels) {
  Machine machine({2, 2, 2});
  const BlockLayout leaf(8, machine.config());
  MultigridArray mg(leaf, 3, 2);
  for (int level = 0; level <= 3; ++level) {
    const BlockLayout ll = layout_for_level(leaf, level);
    DistGrid temp(ll, 2);
    fill_grid(temp);
    multigrid_embed(machine, temp, level, mg, GetParam());
    DistGrid back(ll, 2);
    multigrid_extract(machine, mg, level, back, GetParam());
    const std::int32_t n = ll.boxes_per_side();
    for (std::int32_t z = 0; z < n; ++z)
      for (std::int32_t y = 0; y < n; ++y)
        for (std::int32_t x = 0; x < n; ++x)
          EXPECT_DOUBLE_EQ(back.at_global({x, y, z})[0],
                           box_value({x, y, z}, 0))
              << "level " << level;
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, EmbedMethodTest,
                         ::testing::Values(EmbedMethod::kGeneralSend,
                                           EmbedMethod::kLocalCopy),
                         [](const auto& info) {
                           return info.param == EmbedMethod::kGeneralSend
                                      ? "general_send"
                                      : "local_copy";
                         });

TEST(MultigridTest, LocalCopyAvoidsOffVuTrafficWhenAligned) {
  // Levels with >= 1 box per VU embed with zero off-VU bytes (Section 3.3.2).
  Machine machine({2, 2, 2});
  const BlockLayout leaf(16, machine.config());
  MultigridArray mg(leaf, 4, 1);
  const BlockLayout l3 = layout_for_level(leaf, 3);
  DistGrid temp(l3, 1);
  machine.reset_stats();
  multigrid_embed(machine, temp, 3, mg, EmbedMethod::kLocalCopy);
  EXPECT_EQ(machine.stats().off_vu_bytes, 0u);
  EXPECT_GT(machine.stats().local_bytes, 0u);
}

TEST(MultigridTest, GeneralSendAlwaysRoutesThroughNetwork) {
  Machine machine({2, 2, 2});
  const BlockLayout leaf(16, machine.config());
  MultigridArray mg(leaf, 4, 1);
  const BlockLayout l3 = layout_for_level(leaf, 3);
  DistGrid temp(l3, 1);
  machine.reset_stats();
  multigrid_embed(machine, temp, 3, mg, EmbedMethod::kGeneralSend);
  EXPECT_GT(machine.stats().off_vu_bytes, 0u);
}

TEST(ReplicateTest, AllStrategiesProduceIdenticalMatrices) {
  const auto compute = [](std::size_t i, std::span<double> out) {
    for (std::size_t j = 0; j < out.size(); ++j)
      out[j] = static_cast<double>(i * 100 + j);
  };
  for (ReplicateStrategy s :
       {ReplicateStrategy::kComputeEverywhere,
        ReplicateStrategy::kComputeReplicate,
        ReplicateStrategy::kComputeReplicateGrouped}) {
    Machine machine({2, 2, 2});
    const auto r = replicate_matrices(machine, 8, 4, s, compute);
    ASSERT_EQ(r.matrices.size(), 8u);
    EXPECT_DOUBLE_EQ(r.matrices[3][2], 302.0);
  }
}

TEST(ReplicateTest, TradeoffCounters) {
  const auto compute = [](std::size_t, std::span<double> out) {
    for (double& v : out) v = 1.0;
  };
  Machine m_every({4, 4, 4}), m_repl({4, 4, 4}), m_group({4, 4, 4});
  const auto every = replicate_matrices(
      m_every, 8, 16, ReplicateStrategy::kComputeEverywhere, compute);
  const auto repl = replicate_matrices(
      m_repl, 8, 16, ReplicateStrategy::kComputeReplicate, compute);
  const auto group = replicate_matrices(
      m_group, 8, 16, ReplicateStrategy::kComputeReplicateGrouped, compute);
  // Compute everywhere: P x the construction work, zero communication.
  EXPECT_EQ(every.compute_invocations, 8u * 64);
  EXPECT_EQ(m_every.stats().off_vu_bytes, 0u);
  // Replicate: one construction each, 8 broadcasts.
  EXPECT_EQ(repl.compute_invocations, 8u);
  EXPECT_EQ(m_repl.stats().broadcasts, 8u);
  EXPECT_GT(m_repl.stats().off_vu_bytes, 0u);
  // Grouping reduces broadcast traffic (paper Fig. 8: factor 1.26-1.75).
  EXPECT_LT(m_group.stats().off_vu_bytes, m_repl.stats().off_vu_bytes);
}

TEST(SortTest, CoordinateSortGroupsByBox) {
  const tree::Hierarchy hier(Box3{}, 2);
  const BlockLayout layout(4, {2, 2, 1});
  const ParticleSet p = make_uniform(500, Box3{}, 21);
  const BoxedParticles b = coordinate_sort(p, hier, layout);
  ASSERT_EQ(b.sorted.size(), 500u);
  ASSERT_EQ(b.box_begin.size(), 65u);
  // Within the sorted order, box_of must follow rank order.
  for (std::size_t r = 0; r < 64; ++r)
    for (std::uint32_t i = b.box_begin[r]; i < b.box_begin[r + 1]; ++i)
      EXPECT_EQ(b.box_of[i], b.rank_to_flat[r]);
  // Every particle is inside its assigned box.
  for (std::size_t i = 0; i < 500; ++i) {
    const tree::BoxCoord c = hier.coord_of(2, b.box_of[i]);
    EXPECT_EQ(hier.flat_index(2, hier.leaf_of(b.sorted.position(i))),
              hier.flat_index(2, c));
  }
}

TEST(SortTest, PermRecoversOriginalOrder) {
  const tree::Hierarchy hier(Box3{}, 2);
  const BlockLayout layout(4, {1, 1, 1});
  const ParticleSet p = make_uniform(100, Box3{}, 22);
  const BoxedParticles b = coordinate_sort(p, hier, layout);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(b.sorted.position(i), p.position(b.perm[i]));
}

TEST(SortTest, CoordinateSortIsPerfectlyLocalWithBoxPerVu) {
  // The paper's claim (Section 3.2): with at least one leaf box per VU and
  // uniform particles, every sorted particle lands on its box's home VU.
  const tree::Hierarchy hier(Box3{}, 3);
  const BlockLayout layout(8, {2, 2, 2});
  // One particle per box makes the 1-D block partition exact.
  ParticleSet p(512);
  for (std::size_t f = 0; f < 512; ++f)
    p.set(f, hier.center(3, hier.coord_of(3, f)), 1.0);
  const BoxedParticles b = coordinate_sort(p, hier, layout);
  const SortLocality loc = measure_locality(b, hier, layout);
  EXPECT_DOUBLE_EQ(loc.home_fraction, 1.0);
  EXPECT_EQ(loc.off_vu_bytes, 0u);
}

TEST(SortTest, MortonSortIsLessLocalThanCoordinateSort) {
  const tree::Hierarchy hier(Box3{}, 3);
  const BlockLayout layout(8, {4, 2, 1});  // anisotropic VU grid
  ParticleSet p(512);
  for (std::size_t f = 0; f < 512; ++f)
    p.set(f, hier.center(3, hier.coord_of(3, f)), 1.0);
  const SortLocality coord =
      measure_locality(coordinate_sort(p, hier, layout), hier, layout);
  const SortLocality morton =
      measure_locality(morton_sort(p, hier), hier, layout);
  EXPECT_DOUBLE_EQ(coord.home_fraction, 1.0);
  EXPECT_LT(morton.home_fraction, 1.0);
}

TEST(SortTest, SegmentedScan) {
  const std::vector<double> in{1, 2, 3, 4, 5};
  const std::vector<std::uint32_t> offsets{0, 2, 2, 5};
  std::vector<double> out(5);
  segmented_scan_add(in, offsets, out);
  EXPECT_DOUBLE_EQ(out[0], 1);
  EXPECT_DOUBLE_EQ(out[1], 3);
  EXPECT_DOUBLE_EQ(out[2], 3);
  EXPECT_DOUBLE_EQ(out[3], 7);
  EXPECT_DOUBLE_EQ(out[4], 12);
}

}  // namespace
}  // namespace hfmm::dp
