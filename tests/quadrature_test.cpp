// Tests for Legendre polynomials, Gauss-Legendre rules, real spherical
// harmonics, and the sphere integration rules (exactness degrees).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "hfmm/quadrature/legendre.hpp"
#include "hfmm/quadrature/sphere_rule.hpp"
#include "hfmm/util/rng.hpp"

namespace hfmm::quadrature {
namespace {

TEST(LegendreTest, KnownValues) {
  std::vector<double> p(6);
  legendre_all(5, 0.5, p);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_NEAR(p[2], 0.5 * (3 * 0.25 - 1), 1e-15);                // -0.125
  EXPECT_NEAR(p[3], 0.5 * (5 * 0.125 - 3 * 0.5), 1e-15);         // -0.4375
}

TEST(LegendreTest, EndpointValues) {
  std::vector<double> p(11);
  legendre_all(10, 1.0, p);
  for (int n = 0; n <= 10; ++n) EXPECT_NEAR(p[n], 1.0, 1e-14);
  legendre_all(10, -1.0, p);
  for (int n = 0; n <= 10; ++n)
    EXPECT_NEAR(p[n], (n % 2 == 0) ? 1.0 : -1.0, 1e-14);
}

TEST(LegendreTest, DerivativesMatchFiniteDifference) {
  Xoshiro256 rng(3);
  std::vector<double> p(9), dp(9), ph(9), pl(9);
  for (int trial = 0; trial < 20; ++trial) {
    const double x = rng.uniform(-0.95, 0.95);
    const double eps = 1e-6;
    legendre_all_derivs(8, x, p, dp);
    legendre_all(8, x + eps, ph);
    legendre_all(8, x - eps, pl);
    for (int n = 0; n <= 8; ++n)
      EXPECT_NEAR(dp[n], (ph[n] - pl[n]) / (2 * eps), 1e-6) << "n=" << n;
  }
}

TEST(LegendreTest, SingleValueMatchesAll) {
  EXPECT_NEAR(legendre(4, 0.3), [] {
    std::vector<double> p(5);
    legendre_all(4, 0.3, p);
    return p[4];
  }(), 1e-15);
}

class GaussLegendreExactness : public ::testing::TestWithParam<int> {};

TEST_P(GaussLegendreExactness, IntegratesPolynomialsExactly) {
  const int n = GetParam();
  const GaussLegendre gl = gauss_legendre(n);
  ASSERT_EQ(gl.nodes.size(), static_cast<std::size_t>(n));
  // integral of x^k over [-1,1] = 2/(k+1) for even k, 0 for odd k;
  // exact for degree <= 2n-1.
  for (int deg = 0; deg <= 2 * n - 1; ++deg) {
    double sum = 0;
    for (int j = 0; j < n; ++j)
      sum += gl.weights[j] * std::pow(gl.nodes[j], deg);
    const double exact = (deg % 2 == 0) ? 2.0 / (deg + 1) : 0.0;
    EXPECT_NEAR(sum, exact, 1e-12) << "degree " << deg;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussLegendreExactness,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10, 16));

TEST(GaussLegendreTest, WeightsSumToTwo) {
  for (int n : {1, 3, 7, 12}) {
    const GaussLegendre gl = gauss_legendre(n);
    double sum = 0;
    for (double w : gl.weights) sum += w;
    EXPECT_NEAR(sum, 2.0, 1e-13);
  }
}

TEST(SphericalHarmonicsTest, Y00IsOne) {
  std::vector<double> y(sh_count(2));
  real_sph_harmonics(2, Vec3{0, 0, 1}, y);
  EXPECT_NEAR(y[0], 1.0, 1e-14);
}

TEST(SphericalHarmonicsTest, OrthonormalUnderHighDegreeRule) {
  // With the 4-pi normalization, mean(Y_a * Y_b) = delta_ab. Use a product
  // rule of degree 16 to integrate products of degree <= 8 harmonics.
  const SphereRule rule = product_rule_for_degree(16);
  const int lmax = 4;
  const std::size_t nsh = sh_count(lmax);
  std::vector<double> gram(nsh * nsh, 0.0), y(nsh);
  for (std::size_t i = 0; i < rule.size(); ++i) {
    real_sph_harmonics(lmax, rule.points[i], y);
    for (std::size_t a = 0; a < nsh; ++a)
      for (std::size_t b = 0; b < nsh; ++b)
        gram[a * nsh + b] += rule.weights[i] * y[a] * y[b];
  }
  for (std::size_t a = 0; a < nsh; ++a)
    for (std::size_t b = 0; b < nsh; ++b)
      EXPECT_NEAR(gram[a * nsh + b], a == b ? 1.0 : 0.0, 1e-10)
          << "(a,b)=(" << a << "," << b << ")";
}

TEST(SphericalHarmonicsTest, AdditionTheorem) {
  // sum_m Y_lm(u) Y_lm(v) = (2l+1) P_l(u . v) in the 4-pi normalization.
  Xoshiro256 rng(9);
  const auto rand_unit = [&] {
    const double z = rng.uniform(-1, 1);
    const double phi = rng.uniform(0, 2 * std::numbers::pi);
    const double s = std::sqrt(1 - z * z);
    return Vec3{s * std::cos(phi), s * std::sin(phi), z};
  };
  const int lmax = 6;
  std::vector<double> yu(sh_count(lmax)), yv(sh_count(lmax));
  for (int trial = 0; trial < 10; ++trial) {
    const Vec3 u = rand_unit(), v = rand_unit();
    real_sph_harmonics(lmax, u, yu);
    real_sph_harmonics(lmax, v, yv);
    for (int l = 0; l <= lmax; ++l) {
      double sum = 0;
      for (int m = -l; m <= l; ++m)
        sum += yu[l * (l + 1) + m] * yv[l * (l + 1) + m];
      EXPECT_NEAR(sum, (2 * l + 1) * legendre(l, u.dot(v)), 1e-10)
          << "l=" << l;
    }
  }
}

struct RuleCase {
  const char* name;
  SphereRule (*make)();
  int expect_degree;
  std::size_t expect_k;
};

class SphereRuleExactness : public ::testing::TestWithParam<RuleCase> {};

TEST_P(SphereRuleExactness, PropertiesAndMoments) {
  const RuleCase& c = GetParam();
  const SphereRule rule = c.make();
  EXPECT_EQ(rule.size(), c.expect_k);
  EXPECT_GE(rule.degree, c.expect_degree);
  double wsum = 0;
  for (double w : rule.weights) wsum += w;
  EXPECT_NEAR(wsum, 1.0, 1e-12);
  for (const Vec3& p : rule.points) EXPECT_NEAR(p.norm(), 1.0, 1e-12);
  // Exact through the declared degree...
  EXPECT_LT(rule.worst_moment(c.expect_degree), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, SphereRuleExactness,
    ::testing::Values(
        RuleCase{"icosahedron", &icosahedron_rule, 5, 12},
        RuleCase{"k72", &rule_k72, 11, 72},
        RuleCase{"d7", [] { return product_rule_for_degree(7); }, 7, 32},
        RuleCase{"d9", [] { return product_rule_for_degree(9); }, 9, 50},
        RuleCase{"d14", [] { return product_rule_for_degree(14); }, 14, 120}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(SphereRuleTest, IcosahedronNotExactAtDegreeSix) {
  const SphereRule rule = icosahedron_rule();
  EXPECT_GT(rule.worst_moment(6), 1e-6);
}

TEST(SphereRuleTest, FibonacciLsqWeightsAreExactWhenFeasible) {
  // 64 points can satisfy the (5+1)^2 = 36 constraints of degree 5.
  const SphereRule rule = fibonacci_rule(64, 5);
  EXPECT_GE(rule.degree, 5);
  EXPECT_LT(rule.worst_moment(5), 1e-9);
}

TEST(SphereRuleTest, RuleForOrderPicksPaperPairing) {
  EXPECT_EQ(rule_for_order(5).size(), 12u);   // Table 2: D = 5 -> K = 12
  EXPECT_EQ(rule_for_order(3).size(), 12u);
  const SphereRule r9 = rule_for_order(9);
  EXPECT_GE(r9.degree, 9);
}

TEST(SphereRuleTest, MeanOfConstantIsConstant) {
  for (const SphereRule& rule :
       {icosahedron_rule(), rule_k72(), product_rule(4, 9)}) {
    double sum = 0;
    for (std::size_t i = 0; i < rule.size(); ++i) sum += rule.weights[i] * 7.5;
    EXPECT_NEAR(sum, 7.5, 1e-12) << rule.name;
  }
}

TEST(SphereRuleTest, InvalidArgumentsThrow) {
  EXPECT_THROW(product_rule(0, 5), std::invalid_argument);
  EXPECT_THROW(fibonacci_rule(0, 3), std::invalid_argument);
  EXPECT_THROW(rule_for_order(-1), std::invalid_argument);
  EXPECT_THROW(gauss_legendre(0), std::invalid_argument);
}

}  // namespace
}  // namespace hfmm::quadrature
