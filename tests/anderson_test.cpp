// Tests for Anderson's computational elements: the Poisson-formula kernels,
// outer/inner sphere approximations, gradients, the three translation
// operators as matrices, and the leaf operations P2M/L2P.

#include <gtest/gtest.h>

#include <cmath>

#include "hfmm/anderson/kernels.hpp"
#include "hfmm/anderson/leaf_ops.hpp"
#include "hfmm/anderson/translations.hpp"
#include "hfmm/util/rng.hpp"

namespace hfmm::anderson {
namespace {

Params test_params() {
  Params p = params_for_order(5);
  return p;
}

// Potential at x due to unit charges at given positions.
double direct_potential(const std::vector<Vec3>& charges, const Vec3& x) {
  double phi = 0;
  for (const Vec3& c : charges) phi += 1.0 / (x - c).norm();
  return phi;
}

// Samples the exact potential of `charges` on a sphere (center, a).
std::vector<double> sample_on_sphere(const Params& p, const Vec3& center,
                                     double a,
                                     const std::vector<Vec3>& charges) {
  std::vector<double> g(p.k(), 0.0);
  for (std::size_t i = 0; i < p.k(); ++i)
    g[i] = direct_potential(charges, center + a * p.rule.points[i]);
  return g;
}

TEST(KernelTest, OuterMonopoleIsExact) {
  // Constant boundary values q/a represent a point charge q at the centre;
  // the n = 0 term must reproduce q/r exactly for any truncation.
  const Params p = test_params();
  const double a = 0.7, q = 2.5;
  std::vector<double> g(p.k(), q / a);
  for (const Vec3& x : {Vec3{2, 0, 0}, Vec3{1, 1, 1}, Vec3{-3, 0.5, 2}}) {
    const double phi =
        evaluate_outer(p.rule, p.truncation, a, Vec3{0, 0, 0}, g, x);
    EXPECT_NEAR(phi, q / x.norm(), 1e-12 * q);
  }
}

TEST(KernelTest, InnerConstantIsExact) {
  // Constant boundary values represent a constant interior potential.
  const Params p = test_params();
  std::vector<double> g(p.k(), 3.25);
  for (const Vec3& x : {Vec3{0, 0, 0}, Vec3{0.1, 0.2, -0.1}, Vec3{0.3, 0, 0}}) {
    const double phi =
        evaluate_inner(p.rule, p.truncation, 0.8, Vec3{0, 0, 0}, g, x);
    EXPECT_NEAR(phi, 3.25, 1e-12);
  }
}

TEST(KernelTest, OuterApproximationConvergesWithOrder) {
  // A cluster of charges in the unit box, evaluated 3 box-sides away: the
  // error must fall sharply as the integration order grows (Table 2).
  Xoshiro256 rng(5);
  std::vector<Vec3> charges;
  for (int i = 0; i < 20; ++i)
    charges.push_back(
        {rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)});
  const Vec3 x{3.0, 0.4, -0.2};
  const double exact = direct_potential(charges, x);
  double prev_err = 1.0;
  for (const int order : {3, 5, 9, 14}) {
    Params p = params_for_order(order);
    const double a = p.outer_ratio;
    const auto g = sample_on_sphere(p, Vec3{0, 0, 0}, a, charges);
    const double approx =
        evaluate_outer(p.rule, p.truncation, a, Vec3{0, 0, 0}, g, x);
    const double err = std::abs(approx - exact) / std::abs(exact);
    EXPECT_LT(err, prev_err * 1.05) << "order " << order;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-6);  // D = 14 gives ~7 digits
}

TEST(KernelTest, InnerApproximationRepresentsFarSources) {
  // Sources 3 sides away; the inner approximation on a sphere of radius 1.4
  // must reproduce the potential near the centre.
  const Params p = params_for_order(9);
  const std::vector<Vec3> charges{{3.0, 0.1, 0}, {-3.2, 0, 0.4}, {0, 3.1, -1}};
  const double a = p.inner_ratio;
  const auto g = sample_on_sphere(p, Vec3{0, 0, 0}, a, charges);
  for (const Vec3& x :
       {Vec3{0, 0, 0}, Vec3{0.2, -0.3, 0.1}, Vec3{0.4, 0.4, 0.4}}) {
    const double exact = direct_potential(charges, x);
    const double approx =
        evaluate_inner(p.rule, p.truncation, a, Vec3{0, 0, 0}, g, x);
    EXPECT_NEAR(approx, exact, 1e-4 * std::abs(exact));
  }
}

TEST(KernelTest, InnerGradientMatchesFiniteDifference) {
  const Params p = params_for_order(9);
  const std::vector<Vec3> charges{{2.8, 0.5, 0.1}, {-3.0, 0.2, 0.9}};
  const double a = p.inner_ratio;
  const auto g = sample_on_sphere(p, Vec3{0, 0, 0}, a, charges);
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec3 x{rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4),
                 rng.uniform(-0.4, 0.4)};
    const Vec3 grad =
        evaluate_inner_gradient(p.rule, p.truncation, a, {0, 0, 0}, g, x);
    const double eps = 1e-6;
    for (int c = 0; c < 3; ++c) {
      Vec3 hi = x, lo = x;
      hi[c] += eps;
      lo[c] -= eps;
      const double fd =
          (evaluate_inner(p.rule, p.truncation, a, {0, 0, 0}, g, hi) -
           evaluate_inner(p.rule, p.truncation, a, {0, 0, 0}, g, lo)) /
          (2 * eps);
      EXPECT_NEAR(grad[c], fd, 1e-5 * (1.0 + std::abs(fd)));
    }
  }
}

TEST(KernelTest, InnerGradientAtCenterIsFinite) {
  const Params p = test_params();
  std::vector<double> g(p.k(), 0.0);
  g[0] = 1.0;  // arbitrary non-symmetric boundary data
  const Vec3 grad = evaluate_inner_gradient(p.rule, p.truncation, 1.0,
                                            {0, 0, 0}, g, {0, 0, 0});
  EXPECT_TRUE(std::isfinite(grad.x));
  EXPECT_TRUE(std::isfinite(grad.y));
  EXPECT_TRUE(std::isfinite(grad.z));
}

TEST(TranslationTest, MatrixEqualsDirectEvaluation) {
  // Applying the T2 matrix to boundary values must equal evaluating the
  // outer approximation at the destination sphere points (Figure 2).
  const Params p = test_params();
  const std::size_t k = p.k();
  const Vec3 dst_minus_src{-3.0, 1.0, 0.0};
  const TranslationMatrix t =
      build_outer_to_points(p, p.outer_ratio, p.inner_ratio, dst_minus_src);
  Xoshiro256 rng(17);
  std::vector<double> g(k);
  for (double& v : g) v = rng.uniform(-1, 1);
  for (std::size_t j = 0; j < k; ++j) {
    double expect = 0;
    const Vec3 pt = dst_minus_src + p.inner_ratio * p.rule.points[j];
    for (std::size_t i = 0; i < k; ++i)
      expect += outer_kernel(p.truncation, p.outer_ratio, p.rule.points[i],
                             pt) *
                g[i] * p.rule.weights[i];
    double got = 0;
    for (std::size_t i = 0; i < k; ++i) got += t.m[j * k + i] * g[i];
    EXPECT_NEAR(got, expect, 1e-12);
  }
}

TEST(TranslationTest, T1PreservesFarPotential) {
  // Child outer -> parent outer must still reproduce the charge cluster's
  // potential far away.
  const Params p = params_for_order(9);
  const TranslationSet ts(p, 2);
  Xoshiro256 rng(23);
  // Charges inside child octant 0 of a unit parent box: child side 0.5,
  // centred at (-0.25, -0.25, -0.25).
  const Vec3 child_center{-0.25, -0.25, -0.25};
  std::vector<Vec3> charges;
  for (int i = 0; i < 15; ++i)
    charges.push_back(child_center + Vec3{rng.uniform(-0.24, 0.24),
                                          rng.uniform(-0.24, 0.24),
                                          rng.uniform(-0.24, 0.24)});
  // Child outer approximation (child side = 0.5).
  const double a_child = p.outer_ratio * 0.5;
  Params pc = p;
  const auto g_child = sample_on_sphere(pc, child_center, a_child, charges);
  // Parent outer via T1 (geometry in child-side units, so matrices apply
  // unchanged at any scale).
  const std::size_t k = p.k();
  std::vector<double> g_parent(k, 0.0);
  const TranslationMatrix& t1 = ts.t1(0);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < k; ++i)
      g_parent[j] += t1.m[j * k + i] * g_child[i];
  // Evaluate both at a far point.
  const Vec3 x{4.0, 1.0, -2.0};
  const double exact = direct_potential(charges, x);
  const double a_parent = p.outer_ratio * 1.0;  // parent side 1
  const double via_parent =
      evaluate_outer(p.rule, p.truncation, a_parent, Vec3{0, 0, 0}, g_parent,
                     x);
  EXPECT_NEAR(via_parent, exact, 2e-4 * std::abs(exact));
}

TEST(TranslationTest, T3ShiftsLocalField) {
  // Parent inner field -> child inner field, checked at a point inside the
  // child.
  const Params p = params_for_order(9);
  const TranslationSet ts(p, 2);
  const std::vector<Vec3> charges{{4.0, 0.3, 0}, {0, -3.8, 1.0}};
  // Parent box side 1 centred at origin; child octant 7 centre (+.25,...).
  const double a_parent = p.inner_ratio * 1.0;
  const auto g_parent = sample_on_sphere(p, {0, 0, 0}, a_parent, charges);
  const std::size_t k = p.k();
  std::vector<double> g_child(k, 0.0);
  const TranslationMatrix& t3 = ts.t3(7);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < k; ++i)
      g_child[j] += t3.m[j * k + i] * g_parent[i];
  const Vec3 child_center{0.25, 0.25, 0.25};
  const double a_child = p.inner_ratio * 0.5;
  for (const Vec3& x : {child_center, child_center + Vec3{0.1, -0.1, 0.05}}) {
    const double exact = direct_potential(charges, x);
    const double approx =
        evaluate_inner(p.rule, p.truncation, a_child, child_center, g_child, x);
    EXPECT_NEAR(approx, exact, 5e-4 * std::abs(exact));
  }
}

TEST(TranslationTest, T2ConvertsOuterToInner) {
  // Source box with charges at offset (3,0,0); the T2 matrix must produce an
  // inner approximation reproducing their potential at the target centre.
  const Params p = params_for_order(9);
  const TranslationSet ts(p, 2);
  Xoshiro256 rng(29);
  const Vec3 src_center{3, 0, 0};
  std::vector<Vec3> charges;
  for (int i = 0; i < 10; ++i)
    charges.push_back(src_center + Vec3{rng.uniform(-0.5, 0.5),
                                        rng.uniform(-0.5, 0.5),
                                        rng.uniform(-0.5, 0.5)});
  const auto g_src =
      sample_on_sphere(p, src_center, p.outer_ratio, charges);
  const std::size_t k = p.k();
  std::vector<double> g_dst(k, 0.0);
  const TranslationMatrix& t2 = ts.t2({3, 0, 0});
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < k; ++i)
      g_dst[j] += t2.m[j * k + i] * g_src[i];
  for (const Vec3& x : {Vec3{0, 0, 0}, Vec3{0.3, 0.2, -0.4}}) {
    const double exact = direct_potential(charges, x);
    const double approx =
        evaluate_inner(p.rule, p.truncation, p.inner_ratio, {0, 0, 0}, g_dst,
                       x);
    EXPECT_NEAR(approx, exact, 1e-3 * std::abs(exact));
  }
}

TEST(TranslationTest, SetHasPaperMatrixCounts) {
  const Params p = test_params();
  const TranslationSet ts(p, 2);
  EXPECT_EQ(ts.t2_count(), 1331u);  // the paper's 11^3 for ease of indexing
  // Memory: 1331 K^2 doubles ~ 1.53 MB at K = 12 (paper Section 3.3.4) plus
  // T1/T3 and supernode matrices.
  EXPECT_GT(ts.resident_bytes(), 1331u * 12 * 12 * 8);
}

TEST(TranslationTest, BuildersReproduceStoredMatrices) {
  const Params p = test_params();
  const TranslationSet ts(p, 2);
  std::vector<double> buf(p.k() * p.k());
  ts.build_t1_into(3, buf);
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_DOUBLE_EQ(buf[i], ts.t1(3).m[i]);
  const std::size_t idx = tree::offset_cube_index({4, -2, 1}, 2);
  ts.build_t2_into(idx, buf);
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_DOUBLE_EQ(buf[i], ts.t2({4, -2, 1}).m[i]);
}

TEST(LeafOpsTest, P2mThenOuterEvalApproximatesDirect) {
  const Params p = params_for_order(9);
  Xoshiro256 rng(31);
  const std::size_t n = 25;
  std::vector<double> px(n), py(n), pz(n), pq(n);
  std::vector<Vec3> charges;
  for (std::size_t i = 0; i < n; ++i) {
    px[i] = rng.uniform(-0.5, 0.5);
    py[i] = rng.uniform(-0.5, 0.5);
    pz[i] = rng.uniform(-0.5, 0.5);
    pq[i] = 1.0;
    charges.push_back({px[i], py[i], pz[i]});
  }
  std::vector<double> g(p.k(), 0.0);
  p2m(p, p.outer_ratio, {0, 0, 0}, px, py, pz, pq, g);
  const Vec3 x{3.5, -1.0, 0.7};
  const double approx =
      evaluate_outer(p.rule, p.truncation, p.outer_ratio, {0, 0, 0}, g, x);
  EXPECT_NEAR(approx, direct_potential(charges, x),
              1e-4 * direct_potential(charges, x));
}

TEST(LeafOpsTest, L2pMatchesPointEvaluation) {
  const Params p = test_params();
  Xoshiro256 rng(37);
  std::vector<double> g(p.k());
  for (double& v : g) v = rng.uniform(-1, 1);
  const double a = 1.1;
  const Vec3 center{0.5, 0.5, 0.5};
  const std::vector<double> px{0.4, 0.6}, py{0.5, 0.45}, pz{0.55, 0.5};
  std::vector<double> phi(2, 0.0);
  l2p(p, a, center, g, px, py, pz, phi);
  for (int i = 0; i < 2; ++i)
    EXPECT_NEAR(phi[i],
                evaluate_inner(p.rule, p.truncation, a, center, g,
                               {px[i], py[i], pz[i]}),
                1e-13);
}

TEST(LeafOpsTest, L2pGradientAccumulates) {
  const Params p = test_params();
  std::vector<double> g(p.k(), 1.0);
  const std::vector<double> px{0.1}, py{0.0}, pz{0.0};
  std::vector<double> phi(1, 5.0);
  std::vector<Vec3> grad(1, Vec3{1, 1, 1});
  l2p_gradient(p, 1.0, {0, 0, 0}, g, px, py, pz, phi, grad);
  // Constant boundary data: potential += 1, gradient += 0.
  EXPECT_NEAR(phi[0], 6.0, 1e-12);
  EXPECT_NEAR(grad[0].x, 1.0, 1e-10);
}

TEST(ParamsTest, ValidationCatchesBadValues) {
  Params p = test_params();
  p.truncation = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test_params();
  p.outer_ratio = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test_params();
  p.rule.points.clear();
  p.rule.weights.clear();
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ParamsTest, HeadlineConfigurations) {
  const Params d5 = params_d5_k12();
  EXPECT_EQ(d5.k(), 12u);
  EXPECT_EQ(d5.truncation, 2);
  const Params d14 = params_d14_k72();
  EXPECT_EQ(d14.k(), 72u);
  EXPECT_EQ(d14.order, 14);
}

}  // namespace
}  // namespace hfmm::anderson
