// Tests for the 2-D variant of Anderson's method (paper Section 2.4): the
// circle rule, the log-potential Poisson kernels with the explicit monopole
// channel, the quadtree interaction lists, and the full 2-D solver against
// direct summation.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "hfmm/d2/circle_rule.hpp"
#include "hfmm/d2/kernels.hpp"
#include "hfmm/d2/solver.hpp"
#include "hfmm/d2/tree.hpp"
#include "hfmm/util/errors.hpp"
#include "hfmm/util/rng.hpp"

namespace hfmm::d2 {
namespace {

double direct_phi(const std::vector<Point2>& charges, const Point2& x) {
  double phi = 0.0;
  for (const Point2& c : charges) phi += std::log(1.0 / (x - c).norm());
  return phi;
}

std::vector<double> sample_circle(const CircleRule& rule, const Point2& c,
                                  double a,
                                  const std::vector<Point2>& charges) {
  std::vector<double> g(rule.size());
  for (std::size_t i = 0; i < rule.size(); ++i)
    g[i] = direct_phi(charges,
                      {c.x + a * rule.points[i].x, c.y + a * rule.points[i].y});
  return g;
}

TEST(CircleRuleTest, PointsAndExactness) {
  const CircleRule r = circle_rule(16);
  EXPECT_EQ(r.size(), 16u);
  EXPECT_EQ(r.degree, 15);
  EXPECT_NEAR(r.weight * 16, 1.0, 1e-15);
  // Exact integration of cos(n theta) for 1 <= n < K.
  for (int n = 1; n < 16; ++n) {
    double sum = 0;
    for (const auto& pt : r.points) sum += r.weight * std::cos(n * pt.theta);
    EXPECT_NEAR(sum, 0.0, 1e-13) << "n=" << n;
  }
}

TEST(Kernel2Test, OuterMonopoleExact) {
  // A point charge at the centre: boundary values log(1/a), monopole 1.
  const CircleRule rule = circle_rule(16);
  const double a = 0.9;
  std::vector<double> g(rule.size(), std::log(1.0 / a));
  for (const Point2 x : {Point2{3, 0}, Point2{-2, 2}, Point2{0.5, -4}}) {
    const double phi = evaluate_outer(rule, 7, a, {0, 0}, g, 1.0, x);
    EXPECT_NEAR(phi, std::log(1.0 / x.norm()), 1e-12);
  }
}

TEST(Kernel2Test, InnerConstantExact) {
  const CircleRule rule = circle_rule(12);
  std::vector<double> g(rule.size(), 2.5);
  for (const Point2 x : {Point2{0, 0}, Point2{0.3, -0.2}}) {
    EXPECT_NEAR(evaluate_inner(rule, 5, 0.8, {0, 0}, g, x), 2.5, 1e-12);
  }
}

TEST(Kernel2Test, OuterApproximatesOffCentreCluster) {
  Xoshiro256 rng(3);
  std::vector<Point2> charges;
  for (int i = 0; i < 12; ++i)
    charges.push_back({rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4)});
  const CircleRule rule = circle_rule(24);
  const double a = 1.3;
  const auto g = sample_circle(rule, {0, 0}, a, charges);
  const Point2 x{3.2, -1.1};
  const double approx =
      evaluate_outer(rule, 11, a, {0, 0}, g, static_cast<double>(charges.size()), x);
  EXPECT_NEAR(approx, direct_phi(charges, x),
              1e-7 * std::abs(direct_phi(charges, x)) + 1e-9);
}

TEST(Kernel2Test, InnerRepresentsFarSources) {
  const std::vector<Point2> charges{{3.1, 0.2}, {-3.4, 1.0}, {0.3, 3.3}};
  const CircleRule rule = circle_rule(24);
  const double a = 1.3;
  const auto g = sample_circle(rule, {0, 0}, a, charges);
  for (const Point2 x : {Point2{0, 0}, Point2{0.4, -0.3}}) {
    EXPECT_NEAR(evaluate_inner(rule, 11, a, {0, 0}, g, x),
                direct_phi(charges, x), 1e-6);
  }
}

TEST(Kernel2Test, InnerGradientMatchesFiniteDifference) {
  const std::vector<Point2> charges{{2.9, -0.4}, {-3.0, 0.8}};
  const CircleRule rule = circle_rule(20);
  const double a = 1.2;
  const auto g = sample_circle(rule, {0, 0}, a, charges);
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const Point2 x{rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4)};
    const Point2 grad = evaluate_inner_gradient(rule, 9, a, {0, 0}, g, x);
    const double eps = 1e-6;
    const double fdx = (evaluate_inner(rule, 9, a, {0, 0}, g,
                                       {x.x + eps, x.y}) -
                        evaluate_inner(rule, 9, a, {0, 0}, g,
                                       {x.x - eps, x.y})) /
                       (2 * eps);
    const double fdy = (evaluate_inner(rule, 9, a, {0, 0}, g,
                                       {x.x, x.y + eps}) -
                        evaluate_inner(rule, 9, a, {0, 0}, g,
                                       {x.x, x.y - eps})) /
                       (2 * eps);
    EXPECT_NEAR(grad.x, fdx, 1e-5 * (1 + std::abs(fdx)));
    EXPECT_NEAR(grad.y, fdy, 1e-5 * (1 + std::abs(fdy)));
  }
}

TEST(Tree2Test, InteractionListCounts) {
  // 2-D identities: near (2d+1)^2; interactive 3(2d+1)^2; union
  // (4d+3)^2 - (2d+1)^2; supernodes 16 + 11 = 27.
  EXPECT_EQ(near_offsets2(2).size(), 25u);
  EXPECT_EQ(near_half_offsets2(2).size(), 12u);
  EXPECT_EQ(interactive_offsets2(0, 2).size(), 75u);
  EXPECT_EQ(interactive_offsets2(0, 1).size(), 27u);
  EXPECT_EQ(sibling_union_offsets2(2).size(), 96u);
  EXPECT_EQ(offset_square_size(2), 121u);
  for (int q = 0; q < 4; ++q) {
    const auto sn = supernode_interactive2(q, 2);
    EXPECT_EQ(sn.size(), 27u);
    std::size_t parents = 0;
    for (const auto& e : sn)
      if (e.source_level_up == 1) ++parents;
    EXPECT_EQ(parents, 16u);
  }
}

TEST(Tree2Test, SupernodeFlatteningRecoversInteractive) {
  for (int q = 0; q < 4; ++q) {
    const int px = q & 1, py = (q >> 1) & 1;
    std::set<std::pair<int, int>> flat;
    for (const auto& e : supernode_interactive2(q, 2)) {
      if (e.source_level_up == 0) {
        flat.insert({e.offset.dx, e.offset.dy});
      } else {
        for (int by = 0; by <= 1; ++by)
          for (int bx = 0; bx <= 1; ++bx)
            flat.insert(
                {2 * e.offset.dx + bx - px, 2 * e.offset.dy + by - py});
      }
    }
    std::set<std::pair<int, int>> expect;
    for (const Offset2& o : interactive_offsets2(q, 2))
      expect.insert({o.dx, o.dy});
    EXPECT_EQ(flat, expect) << "quadrant " << q;
  }
}

TEST(Tree2Test, QuadtreeIndexing) {
  const Quadtree t({0, 0}, 1.0, 3);
  EXPECT_EQ(t.boxes_at(3), 64u);
  for (std::size_t f = 0; f < 64; ++f)
    EXPECT_EQ(t.flat_index(3, t.coord_of(3, f)), f);
  for (int q = 0; q < 4; ++q) {
    const BoxCoord2 parent{2, 3};
    const BoxCoord2 child = Quadtree::child_of(parent, q);
    EXPECT_EQ(Quadtree::parent_of(child), parent);
    EXPECT_EQ(Quadtree::quadrant_of(child), q);
  }
}

class Solver2Accuracy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Solver2Accuracy, MatchesDirectSummation) {
  const std::size_t k = GetParam();
  Fmm2Config cfg;
  cfg.k = k;
  cfg.truncation = static_cast<int>((k - 1) / 2);
  cfg.depth = 3;
  const ParticleSet2 p = make_uniform2(1500, 91);
  FmmSolver2 solver(cfg);
  const Fmm2Result r = solver.solve(p);
  const Direct2Result d = direct_all2(p, false);
  const ErrorNorms e = compare_fields(r.phi, d.phi);
  // Higher K converges geometrically (2-D analogue of Table 2).
  const double bound = k <= 8 ? 2e-2 : (k <= 16 ? 2e-4 : 3e-6);
  EXPECT_LT(e.rel_to_mean, bound) << "K = " << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, Solver2Accuracy,
                         ::testing::Values(8u, 16u, 24u, 32u));

TEST(Solver2Test, SupernodesCloseToPlain) {
  const ParticleSet2 p = make_uniform2(2000, 92);
  Fmm2Config plain;
  plain.depth = 3;
  Fmm2Config super = plain;
  super.supernodes = true;
  const Fmm2Result rp = FmmSolver2(plain).solve(p);
  const Fmm2Result rs = FmmSolver2(super).solve(p);
  const Direct2Result d = direct_all2(p, false);
  EXPECT_LT(compare_fields(rp.phi, d.phi).rel_to_mean, 2e-4);
  EXPECT_LT(compare_fields(rs.phi, d.phi).rel_to_mean, 1e-3);
}

TEST(Solver2Test, GradientMatchesDirect) {
  const ParticleSet2 p = make_uniform2(1200, 93);
  Fmm2Config cfg;
  cfg.depth = 3;
  cfg.with_gradient = true;
  const Fmm2Result r = FmmSolver2(cfg).solve(p);
  const Direct2Result d = direct_all2(p, true);
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double dx = r.grad[i].x - d.grad[i].x;
    const double dy = r.grad[i].y - d.grad[i].y;
    worst = std::max(worst, std::hypot(dx, dy));
    scale += std::hypot(d.grad[i].x, d.grad[i].y);
  }
  EXPECT_LT(worst, 0.05 * scale / static_cast<double>(p.size()));
}

TEST(Solver2Test, NeutralPlasma) {
  const ParticleSet2 p = make_plasma2(1500, 94);
  Fmm2Config cfg;
  cfg.depth = 3;
  const Fmm2Result r = FmmSolver2(cfg).solve(p);
  const Direct2Result d = direct_all2(p, false);
  EXPECT_LT(compare_fields(r.phi, d.phi).rel_to_mean, 1e-2);
}

TEST(Solver2Test, ChargeLinearity) {
  ParticleSet2 p = make_uniform2(800, 95);
  Fmm2Config cfg;
  cfg.depth = 3;
  FmmSolver2 solver(cfg);
  const Fmm2Result r1 = solver.solve(p);
  for (double& q : p.q) q *= 2.0;
  const Fmm2Result r2 = solver.solve(p);
  for (std::size_t i = 0; i < p.size(); ++i)
    EXPECT_NEAR(r2.phi[i], 2.0 * r1.phi[i], 1e-9 * (1 + std::abs(r1.phi[i])));
}

TEST(Solver2Test, DepthConsistency) {
  const ParticleSet2 p = make_uniform2(2000, 96);
  std::vector<std::vector<double>> phis;
  for (int depth : {2, 3}) {
    Fmm2Config cfg;
    cfg.depth = depth;
    phis.push_back(FmmSolver2(cfg).solve(p).phi);
  }
  EXPECT_LT(compare_fields(phis[1], phis[0]).rel_to_mean, 1e-3);
}

TEST(Solver2Test, SequentialAndThreadsAgree) {
  const ParticleSet2 p = make_uniform2(900, 97);
  Fmm2Config cfg;
  cfg.depth = 3;
  Fmm2Config cfg_seq = cfg;
  cfg_seq.threads = false;
  const Fmm2Result rt = FmmSolver2(cfg).solve(p);
  const Fmm2Result rs = FmmSolver2(cfg_seq).solve(p);
  EXPECT_LT(compare_fields(rt.phi, rs.phi).max_rel, 1e-11);
}

TEST(Solver2Test, ConfigValidation) {
  Fmm2Config cfg;
  cfg.k = 2;
  EXPECT_THROW(FmmSolver2{cfg}, std::invalid_argument);
  cfg = Fmm2Config{};
  cfg.truncation = 100;
  EXPECT_THROW(FmmSolver2{cfg}, std::invalid_argument);
  cfg = Fmm2Config{};
  cfg.supernodes = true;
  cfg.separation = 1;
  EXPECT_THROW(FmmSolver2{cfg}, std::invalid_argument);
}

TEST(Solver2Test, EmptyInput) {
  Fmm2Config cfg;
  const Fmm2Result r = FmmSolver2(cfg).solve(ParticleSet2{});
  EXPECT_TRUE(r.phi.empty());
}

}  // namespace
}  // namespace hfmm::d2
