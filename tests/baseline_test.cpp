// Tests for the baselines: direct O(N^2) summation (plain, symmetric, range
// kernels) and the Barnes-Hut treecode.

#include <gtest/gtest.h>

#include <cmath>

#include "hfmm/baseline/barnes_hut.hpp"
#include "hfmm/baseline/direct.hpp"
#include "hfmm/util/errors.hpp"

namespace hfmm::baseline {
namespace {

TEST(DirectTest, TwoBodyPotential) {
  ParticleSet p(2);
  p.set(0, {0, 0, 0}, 2.0);
  p.set(1, {3, 4, 0}, 5.0);  // distance 5
  const DirectResult r = direct_all(p, true);
  EXPECT_NEAR(r.phi[0], 5.0 / 5.0, 1e-14);
  EXPECT_NEAR(r.phi[1], 2.0 / 5.0, 1e-14);
  // Gradient of q/|x - s| at particle 0: -q (x0 - s)/r^3.
  EXPECT_NEAR(r.grad[0].x, -5.0 * (-3.0) / 125.0, 1e-14);
  EXPECT_NEAR(r.grad[0].y, -5.0 * (-4.0) / 125.0, 1e-14);
}

TEST(DirectTest, SymmetricMatchesPlain) {
  const ParticleSet p = make_uniform(200, Box3{}, 41);
  const DirectResult a = direct_all(p, true);
  const DirectResult b = direct_all_symmetric(p, true);
  const ErrorNorms e = compare_fields(b.phi, a.phi);
  EXPECT_LT(e.max_rel, 1e-12);
  const ErrorNorms eg = compare_fields(b.grad, a.grad);
  EXPECT_LT(eg.max_abs, 1e-10);
}

TEST(DirectTest, SymmetricCountsHalfThePairs) {
  const ParticleSet p = make_uniform(100, Box3{}, 43);
  const DirectResult a = direct_all(p, false);
  const DirectResult b = direct_all_symmetric(p, false);
  EXPECT_GT(a.flops, b.flops);  // Newton's 3rd law saves work (Figure 10)
}

TEST(DirectTest, RangeKernelMatchesBrute) {
  const ParticleSet p = make_uniform(60, Box3{}, 44);
  // Targets [0,20), sources [20,60).
  std::vector<double> phi(20, 0.0);
  std::vector<Vec3> grad(20, Vec3{});
  direct_ranges(p, 0, 20, 20, 60, phi.data(), grad.data());
  for (std::size_t i = 0; i < 20; ++i) {
    double expect = 0;
    for (std::size_t j = 20; j < 60; ++j)
      expect += p.charge(j) / (p.position(i) - p.position(j)).norm();
    EXPECT_NEAR(phi[i], expect, 1e-12);
  }
}

TEST(DirectTest, SymmetricRangeKernelBothDirections) {
  const ParticleSet p = make_uniform(30, Box3{}, 45);
  std::vector<double> phi(30, 0.0);
  direct_ranges_symmetric(p, 0, 10, 10, 30, phi.data(), nullptr);
  // Targets part.
  for (std::size_t i = 0; i < 10; ++i) {
    double expect = 0;
    for (std::size_t j = 10; j < 30; ++j)
      expect += p.charge(j) / (p.position(i) - p.position(j)).norm();
    EXPECT_NEAR(phi[i], expect, 1e-12);
  }
  // Sources part (appended after the 10 target slots).
  for (std::size_t j = 10; j < 30; ++j) {
    double expect = 0;
    for (std::size_t i = 0; i < 10; ++i)
      expect += p.charge(i) / (p.position(i) - p.position(j)).norm();
    EXPECT_NEAR(phi[10 + (j - 10)], expect, 1e-12);
  }
}

TEST(DirectTest, SelfRangeSkipsSelfInteraction) {
  const ParticleSet p = make_uniform(10, Box3{}, 46);
  std::vector<double> phi(10, 0.0);
  direct_ranges(p, 0, 10, 0, 10, phi.data(), nullptr);
  const DirectResult ref = direct_all(p, false);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(phi[i], ref.phi[i], 1e-12);
}

class BarnesHutTheta : public ::testing::TestWithParam<double> {};

TEST_P(BarnesHutTheta, AccuracyImprovesWithSmallerTheta) {
  const double theta = GetParam();
  const ParticleSet p = make_plummer(800, Box3{}, 47);
  BhConfig cfg;
  cfg.theta = theta;
  const BarnesHut bh(p, cfg);
  const BhResult r = bh.evaluate_all(false);
  const DirectResult ref = direct_all(p, false);
  const ErrorNorms e = compare_fields(r.phi, ref.phi);
  // Loose per-theta bounds; the monotone trend is checked separately.
  EXPECT_LT(e.rms_rel, theta * theta * 0.5 + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Thetas, BarnesHutTheta,
                         ::testing::Values(0.3, 0.5, 0.8));

TEST(BarnesHutTest, MonotoneInTheta) {
  const ParticleSet p = make_uniform(600, Box3{}, 48);
  const DirectResult ref = direct_all(p, false);
  double prev = 1e9;
  for (double theta : {1.0, 0.6, 0.3}) {
    BhConfig cfg;
    cfg.theta = theta;
    const BhResult r = BarnesHut(p, cfg).evaluate_all(false);
    const ErrorNorms e = compare_fields(r.phi, ref.phi);
    EXPECT_LT(e.rms_rel, prev * 1.5);  // allow noise, require overall decline
    prev = e.rms_rel;
  }
  EXPECT_LT(prev, 2e-4);
}

TEST(BarnesHutTest, QuadrupoleBeatsMonopole) {
  const ParticleSet p = make_uniform(500, Box3{}, 49);
  const DirectResult ref = direct_all(p, false);
  BhConfig mono;
  mono.quadrupole = false;
  mono.theta = 0.6;
  BhConfig quad;
  quad.quadrupole = true;
  quad.theta = 0.6;
  const ErrorNorms em =
      compare_fields(BarnesHut(p, mono).evaluate_all(false).phi, ref.phi);
  const ErrorNorms eq =
      compare_fields(BarnesHut(p, quad).evaluate_all(false).phi, ref.phi);
  EXPECT_LT(eq.rms_rel, em.rms_rel);
}

TEST(BarnesHutTest, GradientMatchesDirect) {
  const ParticleSet p = make_plummer(400, Box3{}, 50);
  BhConfig cfg;
  cfg.theta = 0.4;
  const BhResult r = BarnesHut(p, cfg).evaluate_all(true);
  const DirectResult ref = direct_all(p, true);
  const ErrorNorms e = compare_fields(r.grad, ref.grad);
  EXPECT_LT(e.rms_rel, 5e-3);
}

TEST(BarnesHutTest, HandlesNeutralPlasma) {
  const ParticleSet p = make_plasma(400, Box3{}, 51);
  BhConfig cfg;
  cfg.theta = 0.3;
  const BhResult r = BarnesHut(p, cfg).evaluate_all(false);
  const DirectResult ref = direct_all(p, false);
  // Neutral cells have vanishing monopoles, so pointwise relative error is
  // meaningless where phi ~ 0; compare against the mean field magnitude
  // (the paper's Table 1 error metric).
  const ErrorNorms e = compare_fields(r.phi, ref.phi);
  EXPECT_LT(e.rel_to_mean, 0.5);
  for (double v : r.phi) EXPECT_TRUE(std::isfinite(v));
}

TEST(BarnesHutTest, FewerInteractionsThanDirect) {
  const ParticleSet p = make_uniform(2000, Box3{}, 52);
  BhConfig cfg;
  cfg.theta = 0.7;
  const BhResult r = BarnesHut(p, cfg).evaluate_all(false);
  EXPECT_LT(r.p2p_interactions + r.cell_interactions, 2000u * 1999u / 4);
  EXPECT_GT(r.cell_interactions, 0u);
}

TEST(BarnesHutTest, PotentialAtExternalPoint) {
  ParticleSet p(1);
  p.set(0, {0.5, 0.5, 0.5}, 3.0);
  BhConfig cfg;
  const BarnesHut bh(p, cfg);
  EXPECT_NEAR(bh.potential_at({2.5, 0.5, 0.5}), 3.0 / 2.0, 1e-12);
}

TEST(BarnesHutTest, CoincidentParticlesDepthCapped) {
  // Many particles at the same spot must not recurse forever.
  ParticleSet p(40);
  for (std::size_t i = 0; i < 40; ++i) p.set(i, {0.5, 0.5, 0.5}, 1.0);
  BhConfig cfg;
  cfg.leaf_size = 4;
  const BarnesHut bh(p, cfg);
  EXPECT_LE(bh.max_depth_reached(), 40);
}

TEST(BarnesHutTest, EmptySet) {
  const ParticleSet p;
  BhConfig cfg;
  const BarnesHut bh(p, cfg);
  const BhResult r = bh.evaluate_all(false);
  EXPECT_TRUE(r.phi.empty());
}

}  // namespace
}  // namespace hfmm::baseline
