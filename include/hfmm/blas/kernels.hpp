#pragma once
// Runtime-dispatched micro-kernel backends for the dense translation GEMMs.
//
// The paper's performance argument (Section 3, Table 1) rests on running the
// translation products at near-peak GEMM rate. We provide two register-
// blocked implementations behind one function table:
//   - "portable": plain C++ 4x8 micro-kernel the compiler can auto-vectorize
//     for whatever ISA it targets;
//   - "avx2": explicit AVX2/FMA intrinsics (x86-64 only; compile-time guarded
//     and emitted with a `target("avx2,fma")` attribute so the translation
//     unit builds on any x86-64 baseline).
// The active backend is chosen once at startup from cpuid, overridable with
// the environment variable HFMM_BLAS_KERNEL=auto|portable|avx2 (benchmarks
// use select_kernel() to force one side of an A/B comparison).
//
// Both backends share the same blocked driver: B is packed into 8-wide
// column panels in 64-byte-aligned thread-local scratch, then 4x8 panels of
// C are produced with all 32 accumulators live in registers across the whole
// k loop. gemm_batch packs B once and reuses the packing across every
// instance when stride_b == 0 (the shared-translation-matrix case).

#include <cstddef>

namespace hfmm::blas {

enum class KernelKind { kPortable, kAvx2 };

const char* to_string(KernelKind kind);

/// Function table of one backend. Shapes follow blas.hpp conventions:
/// row-major, C[m x n] (+)= A[m x k] * B[k x n].
struct KernelBackend {
  const char* name;
  void (*gemm)(const double* a, std::size_t lda, const double* b,
               std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
               std::size_t n, std::size_t k, bool accumulate);
  void (*gemm_batch)(const double* a, std::size_t lda, std::size_t stride_a,
                     const double* b, std::size_t ldb, std::size_t stride_b,
                     double* c, std::size_t ldc, std::size_t stride_c,
                     std::size_t m, std::size_t n, std::size_t k,
                     std::size_t count, bool accumulate);
};

/// True when `kind` can run on this CPU (portable always can).
bool kernel_supported(KernelKind kind);

/// The backend table for `kind`. Valid to call even when unsupported (for
/// introspection); do not invoke its functions unless kernel_supported().
const KernelBackend& kernel_backend(KernelKind kind);

/// The backend all blas::gemm / blas::gemm_batch calls route through.
/// Initialized on first use: HFMM_BLAS_KERNEL if set (falling back with a
/// stderr warning when the requested ISA is missing), else the best
/// supported kernel.
const KernelBackend& active_kernel();
KernelKind active_kernel_kind();

/// Forces the active backend (for benchmarking / tests). Returns false and
/// leaves the selection unchanged when `kind` is unsupported on this CPU.
/// Not thread-safe against concurrent gemm calls.
bool select_kernel(KernelKind kind);

}  // namespace hfmm::blas
