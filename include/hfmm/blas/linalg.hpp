#pragma once
// Small dense factorizations: enough linear algebra to design quadrature
// weights and to test translation matrices. Not performance-critical.

#include <cstddef>
#include <vector>

namespace hfmm::blas {

/// In-place Cholesky of a symmetric positive-definite n x n row-major matrix
/// (lower triangle). Returns false if the matrix is not numerically SPD.
bool cholesky(double* a, std::size_t n);

/// Solves A x = b for SPD A (A is destroyed). Returns false on failure.
bool solve_spd(std::vector<double> a, std::size_t n, const double* b,
               double* x);

/// Minimum-norm solution of the underdetermined system M w = t where M is
/// rows x cols with rows <= cols: w = M^T (M M^T + ridge I)^{-1} t.
/// Used for least-squares quadrature weights. Returns false on failure.
bool min_norm_solve(const std::vector<double>& m, std::size_t rows,
                    std::size_t cols, const double* t, double* w,
                    double ridge = 0.0);

}  // namespace hfmm::blas
