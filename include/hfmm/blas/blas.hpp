#pragma once
// Dense kernels used by the translation operators.
//
// Anderson's translations are K x K matrix actions on potential vectors
// (Section 3.3.3 of the paper): applied one box at a time they are BLAS-2
// (gemv); aggregated over boxes sharing a translation matrix they become
// BLAS-3 (gemm), and aggregating over independent subgrid slices yields
// multiple-instance gemm — the CMSSL feature the paper exploits. We provide
// portable equivalents with identical call shapes so the aggregation
// experiments (Table 3, Section 3.3.3) can compare the three forms.
//
// Conventions: row-major storage, C[m x n] (+)= A[m x k] * B[k x n].

#include <cstddef>
#include <cstdint>
#include <span>

namespace hfmm::blas {

/// y (+)= A x.  A is m x n row-major with leading dimension lda.
/// If accumulate is false, y is overwritten.
void gemv(const double* a, std::size_t lda, const double* x, double* y,
          std::size_t m, std::size_t n, bool accumulate);

/// C (+)= A B.  A: m x k (lda), B: k x n (ldb), C: m x n (ldc), row-major.
void gemm(const double* a, std::size_t lda, const double* b, std::size_t ldb,
          double* c, std::size_t ldc, std::size_t m, std::size_t n,
          std::size_t k, bool accumulate);

/// Multiple-instance gemm: `count` independent products with the SAME shape,
/// each instance i using a + i*stride_a etc. Matches the CMSSL
/// multiple-instance matrix-multiplication call used in Section 3.3.3.
void gemm_batch(const double* a, std::size_t lda, std::size_t stride_a,
                const double* b, std::size_t ldb, std::size_t stride_b,
                double* c, std::size_t ldc, std::size_t stride_c,
                std::size_t m, std::size_t n, std::size_t k,
                std::size_t count, bool accumulate);

/// Floating-point operation counts (multiply+add counted separately, the
/// convention used in the paper's efficiency metric).
constexpr std::uint64_t gemv_flops(std::size_t m, std::size_t n) {
  return 2ull * m * n;
}
constexpr std::uint64_t gemm_flops(std::size_t m, std::size_t n,
                                   std::size_t k) {
  return 2ull * m * n * k;
}

/// Measured single-core peak flop rate (flops/s) from a resident gemm of the
/// given size. This calibrates the "efficiency of floating point operations"
/// metric the paper proposes for cross-machine comparison.
double measure_peak_flops(std::size_t size = 96, double min_seconds = 0.05);

/// Measured flop rate (flops/s) of the ACTIVE kernel backend (see
/// kernels.hpp) on a resident m x n x k gemm. bench_kernels pairs this with
/// select_kernel() to report per-kernel GFLOP/s in BENCH_kernels.json.
double measure_gemm_flops(std::size_t m, std::size_t n, std::size_t k,
                          double min_seconds = 0.05);

}  // namespace hfmm::blas
