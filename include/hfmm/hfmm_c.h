#ifndef HFMM_HFMM_C_H
#define HFMM_HFMM_C_H
/*
 * hfmm — stable C-linkage facade over the O(N) hierarchical N-body solver
 * (DESIGN.md Section 17). Everything behind this header is opaque: clients
 * link against the hfmm static library with nothing but a C compiler.
 *
 * Object model:
 *   hfmm_context  — one solver service: the shared plan cache plus the
 *                   pooled client solvers. Thread-compatible: distinct
 *                   contexts may be used from distinct threads freely;
 *                   calls on ONE context must be externally serialized.
 *   hfmm_plan     — one workload configuration admitted to a context, with
 *                   its solve plan resolved and pinned (a warm solve
 *                   performs no plan construction even if the LRU evicts
 *                   the entry). Create once, solve many times.
 *
 * Errors are status codes (no exceptions cross this boundary); every
 * out-parameter is untouched on failure. Structs carrying fields start
 * with struct_size for ABI versioning: set it to sizeof(the struct) after
 * zero- or init-filling, so future minor releases can grow the structs
 * without breaking old callers.
 *
 * Minimal use (see examples/service_client.c):
 *   hfmm_context* ctx;
 *   hfmm_context_create(&ctx);
 *   hfmm_config cfg;
 *   hfmm_config_init(&cfg);
 *   hfmm_plan* plan;
 *   hfmm_plan_create(ctx, &cfg, n, &plan);
 *   hfmm_request req = {0};
 *   req.plan = plan; req.n = n;
 *   req.x = x; req.y = y; req.z = z; req.q = q; req.phi = phi;
 *   hfmm_solve(ctx, &req, NULL);
 *   hfmm_plan_destroy(plan);
 *   hfmm_context_destroy(ctx);
 */

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Bumped when the binary interface changes incompatibly. */
#define HFMM_ABI_VERSION 1

typedef enum hfmm_status {
  HFMM_OK = 0,
  HFMM_ERROR_INVALID_ARGUMENT = 1, /* bad config/request field            */
  HFMM_ERROR_UNSUPPORTED = 2,      /* valid but not admissible (e.g. order) */
  HFMM_ERROR_OUT_OF_MEMORY = 3,
  HFMM_ERROR_INTERNAL = 4,
} hfmm_status;

typedef enum hfmm_kernel {
  HFMM_KERNEL_LAPLACE = 0, /* 1/r potential, full far-field chain */
  HFMM_KERNEL_VDW = 1,     /* Lennard-Jones 6-12, near field only */
} hfmm_kernel;

typedef enum hfmm_hierarchy {
  HFMM_HIERARCHY_DENSE = 0,
  HFMM_HIERARCHY_SPARSE = 1,
  HFMM_HIERARCHY_AUTO = 2,
  HFMM_HIERARCHY_ADAPTIVE = 3,
} hfmm_hierarchy;

typedef struct hfmm_context hfmm_context;
typedef struct hfmm_plan hfmm_plan;

/* Workload configuration. hfmm_config_init() fills the defaults (order 5,
 * Laplace, auto hierarchy, automatic depth, no gradient); override fields
 * after. The vdw_* block is read only when kernel == HFMM_KERNEL_VDW. */
typedef struct hfmm_config {
  size_t struct_size; /* = sizeof(hfmm_config), set by hfmm_config_init */
  int order;          /* quadrature order: 5 (K = 12) or 14 (K = 72)    */
  int kernel;         /* hfmm_kernel                                     */
  int hierarchy;      /* hfmm_hierarchy                                  */
  int depth;          /* explicit hierarchy depth, or -1 = automatic     */
  int with_gradient;  /* nonzero: also compute the field gradient        */
  int supernodes;     /* nonzero: Section 2.3 supernode aggregation      */
  double softening;   /* Laplace Plummer softening (0 = none)            */
  /* van der Waals: per-type Lennard-Jones parameters (arrays of length
   * vdw_ntypes, borrowed for the duration of hfmm_plan_create), the
   * switching window, and the periodic domain box. A degenerate box
   * (lo == hi, e.g. left zeroed) selects the default unit domain. */
  size_t vdw_ntypes;
  const double* vdw_rmin;
  const double* vdw_epsilon;
  double vdw_cuton;
  double vdw_cutoff;
  int vdw_periodic;
  double vdw_box_lo[3];
  double vdw_box_hi[3];
} hfmm_config;

/* One solve: n particles in borrowed arrays (never retained past the
 * call), outputs written to the caller's buffers in the ORIGINAL particle
 * order. type may be NULL (all particles type 0); gx/gy/gz must be
 * non-NULL exactly when the plan's config set with_gradient. */
typedef struct hfmm_request {
  const hfmm_plan* plan;
  size_t n;
  const double* x;
  const double* y;
  const double* z;
  const double* q;       /* charges (Laplace); ignored magnitude for vdW */
  const int32_t* type;   /* per-particle type in [0, vdw_ntypes), or NULL */
  double* phi;           /* out: potential per particle [n]               */
  double* gx;            /* out: gradient components [n], or NULL         */
  double* gy;
  double* gz;
} hfmm_request;

/* Per-solve report. Zero-init and set struct_size before passing. */
typedef struct hfmm_solve_info {
  size_t struct_size;
  int depth;                /* hierarchy depth used                       */
  int plan_reused;          /* nonzero: no plan construction this solve   */
  int hierarchy_effective;  /* hfmm_hierarchy actually in effect (may
                             * differ from the request: adaptive degrades
                             * to auto for short-range kernels)           */
  uint64_t workspace_allocs; /* heap-growth events (0 on a warm solve)    */
  double seconds;           /* solve wall time                            */
  double queue_seconds;     /* batch admission wait before the solve ran  */
} hfmm_solve_info;

/* Cumulative context counters. Zero-init and set struct_size. */
typedef struct hfmm_context_stats {
  size_t struct_size;
  uint64_t solves;
  uint64_t batches;
  uint64_t plan_hits;
  uint64_t plan_misses;
  uint64_t plan_evictions;
  uint64_t clients_created;
  uint64_t clients_reused;
} hfmm_context_stats;

/* Fills `config` with the defaults and sets struct_size. */
void hfmm_config_init(hfmm_config* config);

hfmm_status hfmm_context_create(hfmm_context** out);
/* plan_cache_capacity bounds the resident plans (LRU); 0 = default. */
hfmm_status hfmm_context_create_ex(size_t plan_cache_capacity,
                                   hfmm_context** out);
void hfmm_context_destroy(hfmm_context* context);

/* Admits `config` to the context and resolves (and pins) the solve plan
 * for ~n_hint particles. Plans with equal configuration share cache
 * entries, so creating N plans of one workload costs one build. */
hfmm_status hfmm_plan_create(hfmm_context* context, const hfmm_config* config,
                             size_t n_hint, hfmm_plan** out);
void hfmm_plan_destroy(hfmm_plan* plan);

/* Solves one request. `info` (optional) receives the solve report. */
hfmm_status hfmm_solve(hfmm_context* context, const hfmm_request* request,
                       hfmm_solve_info* info);

/* Admits `count` independent requests as one interleaved batch on the
 * scheduler (results identical to solving each alone). `infos` (optional)
 * must have room for `count` reports. */
hfmm_status hfmm_solve_batch(hfmm_context* context,
                             const hfmm_request* requests, size_t count,
                             hfmm_solve_info* infos);

hfmm_status hfmm_context_stats_query(hfmm_context* context,
                                     hfmm_context_stats* out);

/* Static string for a status code (never NULL). */
const char* hfmm_status_string(hfmm_status status);
/* Library version "major.minor.patch" and the ABI revision. */
const char* hfmm_version(void);
int hfmm_abi_version(void);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* HFMM_HFMM_C_H */
