#pragma once
// Direct O(N^2) summation: ground truth for accuracy experiments, the
// near-field kernel of the FMM, and the classic baseline whose per-particle
// cost the O(N) method must beat (paper Section 2.3's cost balance).

#include <cstdint>
#include <vector>

#include "hfmm/util/particles.hpp"
#include "hfmm/util/thread_pool.hpp"

namespace hfmm::baseline {

struct DirectResult {
  std::vector<double> phi;   ///< potential per particle
  std::vector<Vec3> grad;    ///< field gradient per particle (if requested)
  std::uint64_t flops = 0;
};

/// All-pairs potential (and optionally gradient); particle self-interaction
/// excluded. Parallel over targets (no write races). `softening` is the
/// Plummer softening length: interactions use 1/sqrt(r^2 + eps^2).
DirectResult direct_all(const ParticleSet& particles, bool with_gradient,
                        ThreadPool* pool = &ThreadPool::global(),
                        double softening = 0.0);

/// Sequential all-pairs exploiting Newton's third law (each pair visited
/// once) — half the flops of direct_all; used by the Figure 10 bench.
DirectResult direct_all_symmetric(const ParticleSet& particles,
                                  bool with_gradient, double softening = 0.0);

/// Potential/gradient contribution of source range [sb, se) onto target
/// range [tb, te), accumulated into phi/grad (indexed by target). The two
/// ranges must be disjoint or identical (identical skips self-pairs).
/// This is the box-box kernel the FMM near field is built from.
void direct_ranges(const ParticleSet& particles, std::size_t tb, std::size_t te,
                   std::size_t sb, std::size_t se, double* phi, Vec3* grad,
                   double softening = 0.0);

/// Symmetric box-box kernel: accumulates both directions in one pass
/// (targets get sources' contribution and vice versa) — Newton's third law
/// at box granularity, the paper's Figure 10 trick. Ranges must be disjoint.
/// Output layout: phi/grad hold (te-tb) target entries followed by (se-sb)
/// source entries.
void direct_ranges_symmetric(const ParticleSet& particles, std::size_t tb,
                             std::size_t te, std::size_t sb, std::size_t se,
                             double* phi, Vec3* grad, double softening = 0.0);

/// Flops per interacting (target, source) pair of the kernels above.
constexpr std::uint64_t direct_pair_flops(bool with_gradient) {
  return with_gradient ? 20 : 11;
}

}  // namespace hfmm::baseline
