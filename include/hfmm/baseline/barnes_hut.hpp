#pragma once
// Barnes-Hut treecode with monopole + traceless-quadrupole moments and the
// standard theta multipole-acceptance criterion.
//
// This is the O(N log N) comparison family of the paper's Table 1 (Salmon &
// Warren, Liu & Bhatt all ran BH with quadrupole moments); bench_table1
// races it against Anderson's method and direct summation.

#include <cstdint>
#include <vector>

#include "hfmm/util/particles.hpp"
#include "hfmm/util/thread_pool.hpp"

namespace hfmm::baseline {

struct BhConfig {
  double theta = 0.5;     ///< opening angle: open node if size/dist > theta
  int leaf_size = 16;     ///< max particles per leaf
  bool quadrupole = true; ///< include quadrupole moments
};

struct BhResult {
  std::vector<double> phi;
  std::vector<Vec3> grad;
  std::uint64_t flops = 0;
  std::uint64_t p2p_interactions = 0;   ///< particle-particle pairs evaluated
  std::uint64_t cell_interactions = 0;  ///< particle-cell evaluations
};

class BarnesHut {
 public:
  BarnesHut(const ParticleSet& particles, const BhConfig& config);

  /// Potential (and gradient if requested) at every particle position.
  BhResult evaluate_all(bool with_gradient,
                        ThreadPool* pool = &ThreadPool::global()) const;

  /// Potential at an arbitrary point (includes all particles).
  double potential_at(const Vec3& x) const;

  std::size_t node_count() const { return nodes_.size(); }
  int max_depth_reached() const { return max_depth_; }

 private:
  struct Node {
    Vec3 center;          // geometric centre of the cell
    double half = 0.0;    // half side length
    Vec3 com;             // expansion centre (charge centroid when defined)
    double mass = 0.0;    // total charge
    Vec3 dipole;          // dipole about com (nonzero for neutral cells)
    double quad[6] = {};  // traceless quadrupole: xx, yy, zz, xy, xz, yz
    std::int32_t first_child = -1;  // index of first of 8 children, or -1
    std::uint32_t begin = 0, end = 0;  // particle slice (leaf and internal)
  };

  void build(std::size_t node, int depth);
  void accumulate_moments(std::size_t node);
  void evaluate_point(const Vec3& x, std::uint32_t self_index, double& phi,
                      Vec3* grad, std::uint64_t& p2p, std::uint64_t& pc) const;

  BhConfig config_;
  ParticleSet sorted_;                  // particles permuted into tree order
  std::vector<std::uint32_t> original_; // sorted index -> original index
  std::vector<Node> nodes_;
  int max_depth_ = 0;
};

}  // namespace hfmm::baseline
