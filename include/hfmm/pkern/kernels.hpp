#pragma once
// Runtime-dispatched particle-kernel backends: the near-field P2P pair
// kernel and the leaf-level P2M / L2P operators.
//
// PR 1 moved the far-field translation phases onto a register-blocked GEMM
// engine (see blas/kernels.hpp); after that the solver's time is dominated
// by the particle-facing scalar loops — one 1/sqrt per pair in the near
// field and a per-particle Legendre recurrence in L2P. This header gives
// those loops the same treatment: one function table per backend,
//   - "portable": plain C++ structured as fixed 4-wide lane arrays so the
//     compiler's SLP vectorizer emits whatever the target ISA offers;
//   - "avx2": explicit AVX2/FMA intrinsics (x86-64 only, function-level
//     target("avx2,fma") attributes, usable on any x86-64 baseline build).
// The active backend is chosen once at startup from cpuid, overridable with
// HFMM_PKERN_KERNEL=auto|portable|avx2 (mirrors HFMM_BLAS_KERNEL).
//
// The AVX2 P2P computes 1/sqrt(r2) as a vector rsqrt seed (the 12-bit
// _mm_rsqrt_ps estimate widened to double) followed by two Newton-Raphson
// refinements. Each refinement leaves a relative error of -(3/2)e^2, so
// |e| <= 1.5*2^-12 becomes ~2e-7 and then ~6e-14 — below the 1e-12
// acceptance bound, and one-sided, so summed box contributions stay within
// the per-pair bound instead of random-walking past it (see DESIGN.md).
//
// All kernels are batched over structure-of-arrays particle blocks: the
// coordinate sort (Section 3.2 of the paper) already delivers every leaf
// box as a contiguous slice of the x/y/z/q arrays, which is exactly the
// layout a vector unit wants. The scalar routines in baseline/direct.hpp
// and anderson/kernels.hpp remain the reference implementations the tests
// compare against.

#include <cstddef>
#include <cstdint>

#include "hfmm/util/vec3.hpp"

namespace hfmm::pkern {

enum class KernelKind { kPortable, kAvx2 };

const char* to_string(KernelKind kind);

/// Parameter block for the van der Waals (Lennard-Jones) P2P kernels, in
/// CHARMM convention: E_ij = eps_ij ((Rmin_ij/r)^12 - 2 (Rmin_ij/r)^6) with
/// a cuton/cutoff switching window. All distances appear squared so the
/// kernels never take a square root: `rmin2` / `eps` are ntypes x ntypes
/// row-major tables of Rmin_ij^2 and eps_ij (combining rules applied by the
/// caller), indexed [type_i * ntypes + type_j]. The derived switching
/// constants are precomputed once:
///   cm3o       = cutoff2 - 3 cuton2
///   inv_denom  = 1 / (cutoff2 - cuton2)^3
///   inv_denom6 = 6 inv_denom
/// so S(r2) = (cutoff2-r2)^2 (2 r2 + cm3o) inv_denom and
/// dS/dr2 = (cutoff2-r2)(cuton2-r2) inv_denom6 on cuton2 < r2 < cutoff2.
/// When `period` > 0 the pair displacement is wrapped to the minimum image
/// of a cubic box of that side (inv_period = 1/period) before r2.
struct VdwParams {
  const double* rmin2 = nullptr;
  const double* eps = nullptr;
  std::size_t ntypes = 0;
  double cuton2 = 0.0;
  double cutoff2 = 0.0;
  double cm3o = 0.0;
  double inv_denom = 0.0;
  double inv_denom6 = 0.0;
  double period = 0.0;
  double inv_period = 0.0;
};

/// Function table of one backend. All particle data is SoA; all outputs
/// ACCUMULATE (+=) so callers can sum several source boxes into one target.
struct KernelBackend {
  const char* name;

  /// 3-D Coulomb P2P: potential (and gradient when `grad != nullptr`) at
  /// targets [tb, te) due to sources [sb, se), accumulated into
  /// phi[0 .. te-tb) / grad[0 .. te-tb) (indexed by target - tb). The two
  /// ranges must be disjoint or identical; identical ranges skip the self
  /// pair. Interactions use 1/sqrt(r^2 + soft2).
  void (*p2p)(const double* x, const double* y, const double* z,
              const double* q, std::size_t tb, std::size_t te, std::size_t sb,
              std::size_t se, double* phi, Vec3* grad, double soft2);

  /// Symmetric P2P (the paper's Figure 10 trick): both directions of every
  /// (target, source) pair in one pass. Ranges must be disjoint. Outputs are
  /// laid out [te-tb target entries][se-sb source entries]; the gradient is
  /// SoA (gx/gy/gz, same layout) so the source-side accumulation stays a
  /// contiguous vector update — pass gx == nullptr for potential only.
  void (*p2p_symmetric)(const double* x, const double* y, const double* z,
                        const double* q, std::size_t tb, std::size_t te,
                        std::size_t sb, std::size_t se, double* phi,
                        double* gx, double* gy, double* gz, double soft2);

  /// P2M: g[i] += sum_k pq[k] / |sp_i - p_k| for the `k` sphere points
  /// (spx/spy/spz) against a leaf's particle block of size n.
  void (*p2m)(const double* spx, const double* spy, const double* spz,
              std::size_t k, const double* px, const double* py,
              const double* pz, const double* pq, std::size_t n, double* g);

  /// L2P: evaluates the truncated inner Poisson kernel of a sphere (radius
  /// `a`, centre c, unit directions sx/sy/sz, gw[i] = g_i * w_i) at n
  /// particles, accumulating phi[j] (+ grad[j] when grad != nullptr). The
  /// Legendre/power recurrences run across a register of particles instead
  /// of one at a time; particles within ~1e-13 a of the centre fall back to
  /// the scalar reference path.
  void (*l2p)(const double* sx, const double* sy, const double* sz,
              const double* gw, std::size_t k, int truncation, double a,
              double cx, double cy, double cz, const double* px,
              const double* py, const double* pz, std::size_t n, double* phi,
              Vec3* grad);

  /// 2-D log-potential P2P: phi[i-tb] += sum_j -q_j/2 log(r2); when
  /// gxy != nullptr, gxy[2(i-tb)] / [2(i-tb)+1] accumulate the gradient
  /// (-q_j d / r2) as interleaved (x, y) pairs, matching d2::Point2 layout.
  /// Identical ranges skip the self pair. The transcendental log keeps this
  /// kernel shared between backends (see DESIGN.md).
  void (*p2p2)(const double* x, const double* y, const double* q,
               std::size_t tb, std::size_t te, std::size_t sb, std::size_t se,
               double* phi, double* gxy);

  /// 2-D P2M: g[i] += sum_k -pq[k]/2 log(|sp_i - p_k|^2).
  void (*p2m2)(const double* spx, const double* spy, std::size_t k,
               const double* px, const double* py, const double* pq,
               std::size_t n, double* g);

  /// Leapfrog kick: vel[i] = fma(c, acc[i], vel[i]) per component over n
  /// Vec3 entries (c carries the half-step factor and sign). Every backend
  /// computes an explicit correctly-rounded FMA — std::fma in portable
  /// code, vfmadd in avx2 — so the bits are identical across backends and
  /// immune to the compiler's -ffp-contract setting (a scalar mul-then-add
  /// reference would contract or not depending on flags and TU).
  void (*kick)(const Vec3* acc, double c, Vec3* vel, std::size_t n);

  /// Leapfrog drift: x/y/z[i] = fma(dt, vel[i], x/y/z[i]) component-wise
  /// over the SoA coordinate arrays (same explicit-FMA bit guarantee).
  void (*drift)(const Vec3* vel, double dt, double* x, double* y, double* z,
                std::size_t n);

  /// Van der Waals P2P: switched Lennard-Jones energy (and gradient when
  /// `grad != nullptr`) at targets [tb, te) due to sources [sb, se),
  /// accumulated like `p2p`. `type` indexes the per-pair Rmin^2/eps tables
  /// in `vp`. Pairs at or beyond the cutoff contribute exactly zero. The
  /// two backends carry a BITWISE contract: every operation is a correctly
  /// rounded sub/mul/div/round or an explicit FMA in the same sequence, so
  /// portable and avx2 results are identical to the last bit (the
  /// integrator-facing guarantee the kick/drift entries already make).
  void (*p2p_vdw)(const double* x, const double* y, const double* z,
                  const std::int32_t* type, std::size_t tb, std::size_t te,
                  std::size_t sb, std::size_t se, double* phi, Vec3* grad,
                  const VdwParams& vp);

  /// Symmetric van der Waals P2P (Newton's third law): both sides of every
  /// (target, source) pair in one pass, same output layout and gx == nullptr
  /// convention as `p2p_symmetric`, same bitwise contract as `p2p_vdw`.
  void (*p2p_vdw_symmetric)(const double* x, const double* y, const double* z,
                            const std::int32_t* type, std::size_t tb,
                            std::size_t te, std::size_t sb, std::size_t se,
                            double* phi, double* gx, double* gy, double* gz,
                            const VdwParams& vp);
};

/// True when `kind` can run on this CPU (portable always can).
bool kernel_supported(KernelKind kind);

/// The backend table for `kind`. Valid to call even when unsupported (for
/// introspection); do not invoke its functions unless kernel_supported().
const KernelBackend& kernel_backend(KernelKind kind);

/// The backend all particle-kernel calls route through. Initialized on
/// first use: HFMM_PKERN_KERNEL if set (falling back with a stderr warning
/// when the requested ISA is missing), else the best supported kernel.
const KernelBackend& active_kernel();
KernelKind active_kernel_kind();

/// Forces the active backend (for benchmarking / tests). Returns false and
/// leaves the selection unchanged when `kind` is unsupported on this CPU.
/// Not thread-safe against concurrent kernel calls.
bool select_kernel(KernelKind kind);

}  // namespace hfmm::pkern
