#pragma once
// Local essential tree (LET) construction for the distributed executor
// (DESIGN.md Section 18).
//
// Owner-computes: rank r evaluates exactly the stages whose TARGET boxes it
// owns. Walking those stages' source lookups (upward child gathers,
// interactive U/V offsets, supernode gather rectangles, downward parent
// reads, near-field neighbour boxes) yields, per rank, the precise set of
// REMOTE boxes the traversal touches — the rank's local essential tree.
// The walk itself lives in the core executor (solver_dist.cpp), since the
// admissibility masks and gather rectangles are plan-internal structures;
// this layer is the accounting half: it records the marks, prunes each
// rank's level sets to owned + halo boxes, and compiles the explicit
// message schedule (who sends which rows/bodies to whom, with exact byte
// counts) that the channel fabric executes.
//
// Every rank's pruned level sets list OWNED boxes first (ascending flat
// order — the same order the global active sets use, so per-box arithmetic
// is order-identical to the single-rank executor) followed by HALO boxes
// (ascending). Compute stages iterate the owned prefix only; received halo
// rows are pure inputs.

#include <cstdint>
#include <span>
#include <vector>

#include "hfmm/dist/channel.hpp"
#include "hfmm/tree/active_set.hpp"
#include "hfmm/tree/hierarchy.hpp"
#include "hfmm/tree/ownership.hpp"

namespace hfmm::dist {

/// Value-shape parameters of the exchange: K doubles per far/local cell,
/// whether the kernel has a far field at all, and whether ghost bodies
/// carry a type channel (vdW).
struct LetGeometry {
  std::size_t k = 0;
  bool far_capable = true;
  bool with_types = false;
};

/// One far/local-cell message: `src_rows`/`dst_rows` are aligned row lists
/// into the sender's / receiver's level-`level` store. Payload is
/// rows * K doubles, packed in list order.
struct CellMsg {
  int src = 0;
  int dst = 0;
  int level = 0;
  MsgKind kind = MsgKind::kFar;
  std::vector<std::uint32_t> src_rows;
  std::vector<std::uint32_t> dst_rows;
  std::uint64_t bytes = 0;
};

/// One ghost-bodies message: the sender's owned leaf boxes (global flat
/// indices, ascending) whose particles the receiver's near field needs.
/// Payload per box: x, y, z, q arrays (doubles) then types (int32, vdW).
struct BodyMsg {
  int src = 0;
  int dst = 0;
  std::vector<std::uint32_t> boxes;
  std::uint32_t bodies = 0;
  std::uint64_t bytes = 0;
};

/// One rank's pruned tree: level sets over owned + halo boxes, plus the
/// ghost leaf list and the modeled incoming traffic.
struct RankTree {
  tree::ActiveLevels act;
  /// Per level: count of OWNED boxes — the prefix of act.levels[l] the
  /// rank's compute stages iterate. Rows >= owned[l] are received halo.
  std::vector<std::size_t> owned;
  /// Global flat indices of ghost LEAF boxes (bodies received for the near
  /// field), ascending. Disjoint from the owned leaf run.
  std::vector<std::uint32_t> ghost_leaves;
  std::uint64_t modeled_bytes = 0;  ///< incoming cell + body payload bytes
  std::uint64_t let_cells = 0;      ///< incoming far/local rows
  std::uint64_t let_bodies = 0;     ///< incoming ghost bodies
};

/// The compiled exchange: per-rank trees plus the full message schedule.
struct LetPlan {
  int ranks = 1;
  std::vector<RankTree> rank;
  std::vector<CellMsg> cells;
  std::vector<BodyMsg> bodies;
  std::uint64_t modeled_bytes_total = 0;
};

/// Collects per-rank remote-box requirements and compiles them into a
/// LetPlan. The caller (the core executor's requirement walk) marks global
/// ACTIVE indices; marks on boxes the rank already owns are ignored, so the
/// walk can mark unconditionally.
class LetBuilder {
 public:
  LetBuilder(const tree::ActiveLevels& act, const tree::OwnershipLevels& own);

  /// Rank needs the far-expansion vector of box `gai` (global active index
  /// at `level`) — an upward child gather, interactive source, or supernode
  /// source.
  void need_far(int rank, int level, std::int32_t gai);
  /// Rank needs the local-expansion vector of box `gai` — a downward parent
  /// read.
  void need_local(int rank, int level, std::int32_t gai);
  /// Rank needs the bodies of leaf box `gai` — a near-field neighbour.
  void need_bodies(int rank, std::int32_t gai);

  /// Compiles the marks. `leaf_count` is the particle count per global
  /// active leaf (same order as the leaf level set) for the body byte
  /// model.
  LetPlan finalize(const LetGeometry& geo,
                   std::span<const std::uint32_t> leaf_count) const;

 private:
  const tree::ActiveLevels& act_;
  const tree::OwnershipLevels& own_;
  int ranks_;
  // marks_[level][rank * count_l + gai]: bit 0 = far, bit 1 = local.
  std::vector<std::vector<std::uint8_t>> marks_;
  // body_marks_[rank * leaf_count + gai]: ghost-bodies requirement.
  std::vector<std::uint8_t> body_marks_;
};

}  // namespace hfmm::dist
