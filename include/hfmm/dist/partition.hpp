#pragma once
// Geometric partitioner for the distributed executor (DESIGN.md Section 18).
//
// The counting sort already orders particles by leaf flat index, and the
// sparse active sets list the occupied leaves in the same ascending order —
// so a partition into R contiguous ACTIVE-LEAF runs is simultaneously a
// Morton-style range split of the domain (each run is a compact region of
// the z-major box order) and a contiguous split of the sorted particle
// array. No data movement is needed to realize it: rank r's bodies are the
// slice [body_begin[r], body_begin[r+1]) of the globally sorted arrays.
//
// The split itself reuses exec::weighted_split over a per-leaf weight:
//   * kCost   — the sparse executor's cost model (near-field pair count
//               plus per-leaf particle count standing in for the P2M/L2P
//               work), the default;
//   * kBodies — particle counts only (an ORB-flavoured equal-bodies split
//               along the same curve), for measuring how much the cost
//               model buys.

#include <cstdint>
#include <span>
#include <vector>

namespace hfmm::dist {

enum class Partitioner {
  kCost,    ///< weight = near-field pairs + bodies per leaf (default)
  kBodies,  ///< weight = bodies per leaf
};

/// A split of the active leaves (and thereby the sorted bodies) into
/// contiguous per-rank runs. `ranks` is the EFFECTIVE rank count — at most
/// the requested count, clamped so every rank owns at least one leaf.
struct Partition {
  int ranks = 1;
  /// R+1 active-leaf bounds: rank r owns active leaves
  /// [leaf_begin[r], leaf_begin[r+1]).
  std::vector<std::uint32_t> leaf_begin;
  /// R+1 sorted-particle bounds aligned with leaf_begin.
  std::vector<std::uint32_t> body_begin;
  /// Modeled cost per rank (sum of the split weights).
  std::vector<std::uint64_t> rank_cost;
  /// (max rank cost) / (mean rank cost), >= 1.
  double cost_imbalance = 1.0;
};

/// Splits `leaf_count.size()` active leaves into at most `ranks` runs.
/// `leaf_cost` / `near_cost` are the sparse cost model's per-active-leaf
/// entries (particle count, near-field pair count); `leaf_count` is the
/// particle count per active leaf in the same order, prefix-summed into
/// body_begin.
Partition partition_leaves(Partitioner partitioner, int ranks,
                           std::span<const std::uint64_t> leaf_cost,
                           std::span<const std::uint64_t> near_cost,
                           std::span<const std::uint32_t> leaf_count);

}  // namespace hfmm::dist
