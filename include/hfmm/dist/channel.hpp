#pragma once
// In-process message fabric for the owner-computes distributed executor
// (DESIGN.md Section 18).
//
// The exchange is MPI-shaped on purpose: every transfer is an explicit
// (source, destination, tag, payload) message, senders never block, and a
// receive blocks until the matching send has been posted. Ranks share no
// mutable solver state — the fabric's per-pair mailboxes are the only
// synchronization between rank phase graphs, so a real transport (MPI
// point-to-point) can replace Fabric without touching the executor.
//
// Tags encode (level, kind) so a protocol error — a rank popping a message
// out of schedule — fails loudly instead of silently mixing payloads. With
// the deterministic per-(src,dst) send/recv schedule built by the LET plan
// the tag check never fires on a correct build; it exists to catch schedule
// bugs during development.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

namespace hfmm::dist {

/// Payload classification carried in the low tag bits.
enum class MsgKind : int {
  kFar = 0,    ///< far-expansion vectors (K doubles per box)
  kLocal = 1,  ///< local-expansion vectors (K doubles per box)
  kBodies = 2, ///< ghost bodies for the near field (x,y,z,q [,type])
};

/// Tag for a message of `kind` attached to tree level `level`.
constexpr int make_tag(MsgKind kind, int level) {
  return level * 4 + static_cast<int>(kind);
}

/// Per-rank traffic counters. `sent` fields are written only by the owning
/// rank's thread while sending, `recv` fields only while receiving, so the
/// stats need no atomics.
struct ChannelStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_recv = 0;
};

/// All-to-all mailbox fabric for R in-process ranks. One FIFO queue per
/// ordered (src, dst) pair; send() is buffered and never blocks, recv()
/// blocks until the head message of (src → dst) arrives and then checks its
/// tag against the expected one.
class Fabric {
 public:
  explicit Fabric(int ranks);

  int ranks() const { return ranks_; }

  /// Post `payload` from rank `from` to rank `to`. Never blocks.
  void send(int from, int to, int tag, std::vector<std::byte> payload);

  /// Pop the next message sent from `from` to rank `to`. Blocks until one
  /// is available; throws std::logic_error if its tag is not `expect_tag`
  /// (a send/recv schedule mismatch — a protocol bug, not a data error).
  std::vector<std::byte> recv(int to, int from, int expect_tag);

  const ChannelStats& stats(int rank) const { return stats_[rank]; }

 private:
  struct Message {
    int tag = 0;
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };
  Mailbox& box(int from, int to) {
    return *boxes_[static_cast<std::size_t>(from) *
                       static_cast<std::size_t>(ranks_) +
                   static_cast<std::size_t>(to)];
  }

  int ranks_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::vector<ChannelStats> stats_;
};

}  // namespace hfmm::dist
