#pragma once
// CSHIFT and the four interactive-field fetch strategies of Table 4 /
// Figure 6 of the paper.
//
// All four strategies produce the SAME result — a HaloGrid whose ghost
// region holds the periodic neighbors of each VU's subgrid — but move very
// different amounts of data to get there:
//
//   kDirectCshift     "Direct on unaliased arrays": one axis-decomposed
//                     whole-grid CSHIFT sequence per ghost offset.
//   kLinearizedCshift "Linearized unaliased arrays": a snake ordering over
//                     the ghost-offset cube, moving the whole grid one unit
//                     CSHIFT per step and depositing into the halo.
//   kGhostSections    "Direct on aliased arrays": fetch exactly the 6 face,
//                     12 edge and 8 corner ghost regions via array sections.
//   kSubgridSnake     "Linearized aliased arrays": move whole subgrids along
//                     a snake through the 3x3x3 VU neighborhood, then
//                     section out the needed parts (fewer, larger messages).
//
// Boundary conditions are periodic (CSHIFT semantics). The FMM downward pass
// masks out-of-domain boxes by zeroing their potential vectors, which makes
// wrapped ghost reads contribute nothing — the same masking trick the
// paper's Table 3 accounts for ("arithmetic incl. copy and masking").

#include "hfmm/dp/dist_grid.hpp"
#include "hfmm/dp/machine.hpp"

namespace hfmm::dp {

enum class HaloStrategy {
  kDirectCshift,
  kLinearizedCshift,
  kGhostSections,
  kSubgridSnake,
};

const char* to_string(HaloStrategy s);

/// Circular shift of the whole grid by `offset` boxes along `axis` (0/1/2),
/// writing into `dst` (same shape as `src`): dst(c) = src(c - offset e_axis).
/// Counts off-VU bytes for elements crossing a VU boundary, local bytes for
/// the rest, one message per communicating VU pair, one cshift_step.
void cshift(Machine& machine, const DistGrid& src, DistGrid& dst, int axis,
            std::int32_t offset);

/// Fills `halo`'s interior from `grid` (a local copy) and its ghost region
/// using the chosen strategy. `halo.ghost()` must be <= the subgrid extents
/// (deeper halos would need multi-hop fetches; the FMM picks its layout so
/// this holds, mirroring the paper's "subgrid extents of less than four
/// require communication beyond nearest neighbor VUs" remark).
void fill_halo(Machine& machine, const DistGrid& grid, HaloGrid& halo,
               HaloStrategy strategy);

}  // namespace hfmm::dp
