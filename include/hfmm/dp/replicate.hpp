#pragma once
// Redundant-computation vs. replication trade-offs for precomputing
// translation matrices (paper Section 3.3.4, Figures 8 and 9).
//
// A set of `count` matrices (each `bytes` large) must end up resident on
// every VU. Strategies:
//
//   kComputeEverywhere — every VU computes all `count` matrices; no
//                        communication, count x P matrix constructions.
//   kComputeReplicate  — matrix i is computed once (on VU i mod P) and
//                        broadcast to all VUs (spanning-tree one-to-all).
//   kComputeReplicateGrouped — VUs are partitioned into groups of
//                        min(count, P) VUs; each group computes the whole
//                        set (one matrix per member) and broadcasts within
//                        the group only — same compute load, log(group)
//                        instead of log(P) broadcast depth.
//
// The `compute` callback builds matrix i into the given buffer; the
// simulator invokes it the correct number of times (so measured wall time
// reflects real construction cost) and counts broadcast traffic.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "hfmm/dp/machine.hpp"

namespace hfmm::dp {

enum class ReplicateStrategy {
  kComputeEverywhere,
  kComputeReplicate,
  kComputeReplicateGrouped,
};

const char* to_string(ReplicateStrategy s);

struct ReplicateResult {
  /// matrices[i] is the shared buffer for matrix i (identical on all VUs in
  /// the real machine; stored once here, with the copies counted).
  std::vector<std::vector<double>> matrices;
  std::uint64_t compute_invocations = 0;  ///< total across the machine
  std::size_t critical_path = 0;   ///< constructions on the busiest VU
  double compute_seconds = 0.0;    ///< measured: critical path x host speed
  double replicate_estimated_seconds = 0.0;  ///< from the machine cost model

  /// Compute time in the machine model's units: the busiest VU's
  /// constructions at the model's per-VU flop rate. Use this (not the
  /// host-measured compute_seconds) when comparing against the modeled
  /// replication time, so both sides use the same machine.
  double modeled_compute_seconds(double flops_per_matrix,
                                 double vu_flops) const {
    return static_cast<double>(critical_path) * flops_per_matrix / vu_flops;
  }
};

/// Materializes `count` matrices of `doubles_each` values on every VU using
/// `strategy`. `compute(i, out)` fills matrix i.
ReplicateResult replicate_matrices(
    Machine& machine, std::size_t count, std::size_t doubles_each,
    ReplicateStrategy strategy,
    const std::function<void(std::size_t, std::span<double>)>& compute);

/// Counters-only model of a spanning-tree one-to-all broadcast of `bytes`
/// from one VU to all `vus` VUs: (vus - 1) messages over ceil(log2 vus)
/// rounds. Exposed for tests and for the Figure 7/9 cost columns.
void count_broadcast(Machine& machine, std::size_t bytes);

}  // namespace hfmm::dp
