#pragma once
// The coordinate sort (paper Section 3.2, Figure 5) and the boxed particle
// representation it produces.
//
// Input particles arrive as 1-D attribute arrays. The FMM needs them grouped
// by leaf box AND aligned so that, when the sorted 1-D arrays are block-
// partitioned over the VUs, each particle already resides on the VU that
// owns its leaf box. The coordinate sort achieves both by sorting on keys
// built from the box coordinates' VU-address bits (concatenated z|y|x) above
// their local-address bits (z|y|x).

#include <cstdint>
#include <vector>

#include "hfmm/dp/layout.hpp"
#include "hfmm/util/particles.hpp"

namespace hfmm::dp {

/// Particles grouped by leaf box (CSR over boxes in coordinate-sort key
/// order), the 4-D particle-array analogue of Section 3.1.
struct BoxedParticles {
  ParticleSet sorted;                     ///< particles in key order
  std::vector<std::uint32_t> perm;        ///< sorted index -> original index
  std::vector<std::uint32_t> box_of;      ///< leaf flat index per particle
  std::vector<std::uint32_t> box_begin;   ///< CSR offsets, size = #boxes + 1,
                                          ///< indexed by coordinate-sort rank
  std::vector<std::uint32_t> rank_to_flat;  ///< sort rank -> leaf flat index
  std::vector<std::uint32_t> flat_to_rank;  ///< leaf flat index -> sort rank

  std::uint32_t count_in_rank(std::size_t rank) const {
    return box_begin[rank + 1] - box_begin[rank];
  }
};

/// Sorts `particles` with the coordinate sort for `layout` over `hier`'s
/// leaf level. Stable counting sort on the composite key; O(N + boxes).
BoxedParticles coordinate_sort(const ParticleSet& particles,
                               const tree::Hierarchy& hier,
                               const BlockLayout& layout);

/// Reusable temporaries of the counting sort (key arrays and cursors); pass
/// the same instance across calls to keep repeated sorts allocation-free.
/// After any sort through a SortScratch, `rank_of` / `flat_of` hold the
/// CURRENT rank / leaf flat index per ORIGINAL particle index — the state
/// coordinate_sort_step() diffs against on the next timestep.
struct SortScratch {
  std::vector<std::uint32_t> rank_of, flat_of, cursor;

  // Incremental-step state (coordinate_sort_step): new ranks, the previous
  // permutation, per-rank join/leave counts and joiner buckets, and the
  // list of ranks whose occupancy count changed (the invalidation set the
  // solver's StepCache consumes). All reused across steps.
  std::vector<std::uint32_t> rank_new;
  std::vector<std::uint32_t> perm_prev;
  std::vector<std::uint32_t> prev_count;
  std::vector<std::uint32_t> joins, leaves, join_begin, join_sorted;
  std::vector<std::uint32_t> mover_list;
  std::vector<std::uint32_t> begin_new;
  std::vector<std::uint8_t> moved;
  std::vector<std::uint32_t> changed_ranks;  ///< ranks with a net count change
};

/// Outcome of one incremental sort step (see coordinate_sort_step()).
struct StepSortResult {
  std::size_t movers = 0;   ///< particles whose leaf box (rank) changed
  bool repaired = false;    ///< in-place repair ran (no full counting sort)
  bool counts_changed = false;     ///< some rank's occupancy count changed
  bool emptiness_changed = false;  ///< some rank flipped empty <-> non-empty
};

/// In-place variant: writes into `out`, reusing its buffers (and
/// `scratch`'s, when given) so an integrator's step loop pays the sort
/// allocations once. Produces exactly the same result as the returning form.
void coordinate_sort(const ParticleSet& particles, const tree::Hierarchy& hier,
                     const BlockLayout& layout, BoxedParticles& out,
                     SortScratch* scratch = nullptr);

/// Incremental re-sort for a timestep loop (DESIGN.md Section 14). `out` and
/// `scratch` must hold the result of a previous sort of the SAME particle
/// set (same n) over the SAME hierarchy geometry and layout; only positions
/// may have changed since. Diffs each particle's new rank against
/// `scratch.rank_of`: when the mover fraction is <= `mover_threshold` the
/// sorted order is repaired in place (movers stably re-inserted, permutation
/// and box offsets patched), otherwise the full counting sort reruns. Both
/// paths produce output bit-identical to coordinate_sort() on the new
/// positions. On return `scratch.changed_ranks` lists the ranks whose
/// occupancy count changed — the chunk-plan invalidation set.
StepSortResult coordinate_sort_step(const ParticleSet& particles,
                                    const tree::Hierarchy& hier,
                                    const BlockLayout& layout,
                                    double mover_threshold,
                                    BoxedParticles& out, SortScratch& scratch);

/// A plain Morton-order grouping (no VU/local bit split) — the "naive sort"
/// baseline for the Figure 5 locality experiment.
BoxedParticles morton_sort(const ParticleSet& particles,
                           const tree::Hierarchy& hier);

struct SortLocality {
  double home_fraction = 0.0;     ///< particles landing on their box's VU
  std::uint64_t off_vu_bytes = 0; ///< reshaping traffic for the misplaced rest
};

/// Evaluates the reshaping locality of a sorted order: block-partition the
/// sorted 1-D arrays over the VUs and check each particle against the home
/// VU of its leaf box (Section 3.2's claim: with >= 1 box per VU the
/// coordinate sort needs NO reshaping communication).
SortLocality measure_locality(const BoxedParticles& boxed,
                              const tree::Hierarchy& hier,
                              const BlockLayout& layout);

/// Segmented inclusive +-scan: out[i] = sum of in[j] for j in the same
/// segment with j <= i. Segments given by CSR offsets. The data-parallel
/// P2M formulation of Section 3.2 reduces to per-VU segmented scans; exposed
/// for tests and the sort bench.
void segmented_scan_add(std::span<const double> in,
                        std::span<const std::uint32_t> offsets,
                        std::span<double> out);

}  // namespace hfmm::dp
