#pragma once
// Block layout of a 3-D grid of boxes over the VU grid (paper Section 3.1,
// Figure 4).
//
// With block allocation the binary address of a box coordinate splits into
// high-order VU-address bits and low-order local-memory bits, per axis. All
// extents are powers of two, so the split is exactly a bit split — this is
// what the coordinate sort (Section 3.2) exploits to build its keys.

#include <cstdint>
#include <string>

#include "hfmm/dp/machine.hpp"
#include "hfmm/tree/hierarchy.hpp"

namespace hfmm::dp {

/// Where one box lives: owning VU rank plus local subgrid coordinates.
struct BoxHome {
  std::size_t vu = 0;
  std::int32_t lx = 0;
  std::int32_t ly = 0;
  std::int32_t lz = 0;
};

class BlockLayout {
 public:
  /// Grid of `boxes_per_side`^3 boxes distributed over `config`'s VU grid.
  /// Each VU-grid extent must divide the box extent (both powers of two).
  BlockLayout(std::int32_t boxes_per_side, const MachineConfig& config);

  std::int32_t boxes_per_side() const { return n_; }
  std::size_t total_boxes() const {
    return static_cast<std::size_t>(n_) * n_ * n_;
  }

  /// Subgrid extents per VU (S1, S2, S3 in the paper's notation).
  std::int32_t sub_x() const { return sx_; }
  std::int32_t sub_y() const { return sy_; }
  std::int32_t sub_z() const { return sz_; }
  std::size_t boxes_per_vu() const {
    return static_cast<std::size_t>(sx_) * sy_ * sz_;
  }

  const MachineConfig& machine() const { return config_; }

  BoxHome home_of(const tree::BoxCoord& c) const;
  tree::BoxCoord global_of(const BoxHome& h) const;

  /// Local flat index within a VU's subgrid, x fastest.
  std::size_t local_index(std::int32_t lx, std::int32_t ly,
                          std::int32_t lz) const {
    return (static_cast<std::size_t>(lz) * sy_ + ly) * sx_ + lx;
  }

  /// Numbers of VU-address bits per axis (the paper's Figure 4 rows).
  int vu_bits_x() const { return vbx_; }
  int vu_bits_y() const { return vby_; }
  int vu_bits_z() const { return vbz_; }
  int local_bits_x() const { return lbx_; }
  int local_bits_y() const { return lby_; }
  int local_bits_z() const { return lbz_; }

  /// The coordinate-sort key of a box (Section 3.2): VU-address bits of
  /// (z, y, x) concatenated above the local-address bits of (z, y, x), i.e.
  /// z..zy..yx..x | z..zy..yx..x. Sorting particles by this key makes the
  /// block-partitioned 1-D order agree with box homes.
  std::uint64_t sort_key(const tree::BoxCoord& c) const;

  /// Human-readable address-field description (for the quickstart example's
  /// --show-layout mode; mirrors the paper's Figure 4).
  std::string describe() const;

 private:
  std::int32_t n_;
  MachineConfig config_;
  std::int32_t sx_, sy_, sz_;
  int vbx_, vby_, vbz_, lbx_, lby_, lbz_;
};

}  // namespace hfmm::dp
