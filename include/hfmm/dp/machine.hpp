#pragma once
// The simulated data-parallel machine (see DESIGN.md substitution table).
//
// The CM-5E of the paper is a grid of processing nodes, each with four vector
// units (VUs) owning private memory; CM Fortran distributes array axes over
// the VU grid in blocks. All of the paper's communication results are about
// *which elements cross VU boundaries* and *how many primitive operations
// (CSHIFT steps, sends, broadcasts) are issued*. We reproduce those with a
// simulated VU grid: data for every VU lives in one process, "communication"
// is a counted memcpy, and VU-local compute is dispatched onto a thread pool.
//
// A calibratable linear cost model (latency per message + time per off-VU
// byte + time per local byte) converts the counters into estimated times so
// the benches can print paper-style "relative time" columns in addition to
// measured wall-clock.

#include <cstddef>
#include <cstdint>
#include <string>

#include "hfmm/util/thread_pool.hpp"

namespace hfmm::dp {

/// Shape of the simulated VU grid. Each extent must be a power of two
/// (the Connection Machine constraint the paper's layouts rely on).
struct MachineConfig {
  std::int32_t vu_x = 2;
  std::int32_t vu_y = 2;
  std::int32_t vu_z = 2;

  std::size_t total_vus() const {
    return static_cast<std::size_t>(vu_x) * vu_y * vu_z;
  }
  bool valid() const;
};

/// Aggregate communication counters. Byte/message counts are summed over
/// the whole machine; `modeled_seconds` is the CRITICAL-PATH time estimate:
/// each primitive adds the time of its slowest VU (transfers between
/// distinct VU pairs proceed in parallel, as on the CM-5E fat tree), so the
/// total is what a real run of the same operation sequence would take.
struct CommStats {
  std::uint64_t off_vu_bytes = 0;   ///< bytes moved between VUs
  std::uint64_t local_bytes = 0;    ///< bytes copied within a VU
  std::uint64_t messages = 0;       ///< primitive transfers between VU pairs
  std::uint64_t cshift_steps = 0;   ///< single-axis CSHIFT invocations
  std::uint64_t sends = 0;          ///< general (gather/scatter) sends
  std::uint64_t broadcasts = 0;     ///< one-to-all / spread operations
  double modeled_seconds = 0.0;     ///< critical-path time under the model

  CommStats& operator+=(const CommStats& o);
  CommStats operator-(const CommStats& o) const;
};

/// Machine parameters for the time model. Two presets:
///   cm5e_like()      — 1990s MPP ratios: ~20 us message overhead, ~100 MB/s
///                      per-VU link, 32 Mflop/s per VU. These ratios are
///                      what make the paper's trade-offs (redundant compute
///                      over communication, fewer larger transfers) pay off.
///   modern_cluster() — contemporary ratios: ~2 us latency, ~10 GB/s links,
///                      per-VU compute set from the calibrated host peak.
/// The paper itself notes "the relative merit of the techniques depend upon
/// machine metrics"; the benches report both presets where it matters.
struct CostModel {
  double seconds_per_message = 20e-6;     ///< software + network latency
  double seconds_per_off_vu_byte = 1e-8;  ///< ~100 MB/s per VU link
  double seconds_per_local_byte = 2e-9;   ///< ~500 MB/s local copy
  double seconds_per_address = 5e-7;      ///< general-send per-element setup
  double vu_flops = 32e6;                 ///< per-VU compute rate

  static CostModel cm5e_like() { return {}; }
  static CostModel modern_cluster() {
    return {2e-6, 1e-10, 5e-11, 5e-9, 0.0 /* set from host peak by caller */};
  }
};

/// The machine: VU grid shape, counters, cost model, and the thread pool on
/// which per-VU work runs. Counter updates are owned by the (single-threaded)
/// communication phases, so they are plain fields; VU compute phases never
/// touch them.
class Machine {
 public:
  explicit Machine(const MachineConfig& config,
                   ThreadPool* pool = &ThreadPool::global());

  const MachineConfig& config() const { return config_; }
  std::size_t vus() const { return config_.total_vus(); }

  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  CostModel& cost_model() { return cost_; }
  const CostModel& cost_model() const { return cost_; }
  double estimated_comm_seconds() const { return stats_.modeled_seconds; }

  /// Charges a transfer that proceeds in parallel across all VUs (each VU
  /// sending/receiving its share): counters get the totals, the model gets
  /// the per-VU critical path.
  void charge_parallel_transfer(std::uint64_t total_off_bytes,
                                std::uint64_t total_messages,
                                std::uint64_t total_local_bytes = 0);

  /// Runs body(vu) for every VU rank on the thread pool.
  void for_each_vu(const std::function<void(std::size_t)>& body);

  /// VU rank from VU grid coordinates (x fastest, matching the address-bit
  /// layout of the paper's Figure 4 where x uses the lowest-order VU bits).
  std::size_t vu_rank(std::int32_t vx, std::int32_t vy, std::int32_t vz) const {
    return (static_cast<std::size_t>(vz) * config_.vu_y + vy) * config_.vu_x +
           vx;
  }

 private:
  MachineConfig config_;
  ThreadPool* pool_;
  CommStats stats_;
  CostModel cost_;
};

}  // namespace hfmm::dp
