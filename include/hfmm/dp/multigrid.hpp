#pragma once
// The flattened hierarchy embedding and the Multigrid-{embed, extract}
// operators (paper Sections 3.1 and 3.3.2, Figures 3 and 7).
//
// The far-field potentials of ALL levels live in two leaf-shaped layers:
// layer 0 holds the leaf level; within layer 1, level (h - i) occupies the
// strided section start 2^{i-1}, stride 2^i along each axis (i >= 1). The
// embedding keeps every box on the same VU as its descendants whenever the
// level still has at least one box per VU.
//
// Embed/extract move a level-sized temporary grid into/out of its section.
// Two implementations are provided, matching Figure 7:
//   kGeneralSend — the CMF compiler's general path: a send with per-element
//                  address computation over the whole array (overhead linear
//                  in array size);
//   kLocalCopy   — array aliasing + sectioning: a strided local copy when
//                  source and destination share a VU, and the two-step
//                  scheme (stage through the finest level with >= 1 box per
//                  VU) when they do not.

#include <cstdint>
#include <span>

#include "hfmm/dp/dist_grid.hpp"
#include "hfmm/dp/machine.hpp"

namespace hfmm::dp {

enum class EmbedMethod { kGeneralSend, kLocalCopy };

const char* to_string(EmbedMethod m);

/// The two-layer flattened hierarchy of potential vectors.
class MultigridArray {
 public:
  /// `leaf_layout`: layout of the leaf level (2^depth boxes per side).
  MultigridArray(const BlockLayout& leaf_layout, int depth, std::size_t k);

  int depth() const { return depth_; }
  std::size_t k() const { return k_; }
  const BlockLayout& leaf_layout() const { return leaf_; }

  DistGrid& leaf_layer() { return layer0_; }
  DistGrid& coarse_layer() { return layer1_; }
  const DistGrid& leaf_layer() const { return layer0_; }
  const DistGrid& coarse_layer() const { return layer1_; }

  /// Stride and start of level `level`'s section in the leaf-shaped layers
  /// (leaf: stride 1 start 0 in layer 0; level h-i: stride 2^i, start
  /// 2^{i-1} in layer 1).
  std::int32_t section_stride(int level) const;
  std::int32_t section_start(int level) const;

  /// Potential vector of box `c` at `level`, addressed through the embedding.
  std::span<double> at(int level, const tree::BoxCoord& c);
  std::span<const double> at(int level, const tree::BoxCoord& c) const;

  void fill(double v);

 private:
  BlockLayout leaf_;
  int depth_;
  std::size_t k_;
  DistGrid layer0_;
  DistGrid layer1_;
};

/// A level-sized working grid: 2^level boxes per side distributed over the
/// same machine. When the level has fewer boxes than VUs along an axis, the
/// VU grid is folded (multiple VU ranks hold zero boxes); layout_for_level
/// picks the largest power-of-two VU grid that still divides the extents.
BlockLayout layout_for_level(const BlockLayout& leaf_layout, int level);

/// temp (level-shaped) -> the level's section of the multigrid array.
///
/// `active` (optional) is the level's dense->active map (size 8^level,
/// x-fastest flat order, < 0 = inactive): boxes marked inactive are skipped
/// — no copy, no counted communication. Safe whenever the skipped values
/// are not consumed downstream (inactive far fields are exactly zero and a
/// freshly constructed DistGrid is zero-initialized, so a masked move of an
/// active-set-consistent grid is value-identical to the dense move). The
/// kGeneralSend path still pays its per-element address scan over the whole
/// array — that overhead is what the method models — but moves only active
/// sections.
void multigrid_embed(Machine& machine, const DistGrid& temp, int level,
                     MultigridArray& mg, EmbedMethod method,
                     std::span<const std::int32_t> active = {});

/// The level's section of the multigrid array -> temp (level-shaped).
/// `active` as in multigrid_embed; masked extraction leaves inactive temp
/// positions untouched (zero in a fresh grid).
void multigrid_extract(Machine& machine, const MultigridArray& mg, int level,
                       DistGrid& temp, EmbedMethod method,
                       std::span<const std::int32_t> active = {});

}  // namespace hfmm::dp
