#pragma once
// Distributed grids of potential vectors.
//
// DistGrid is the in-memory form of the paper's 4-D potential arrays: three
// block-distributed spatial axes plus one serial axis of K values per box
// (the potential vector — field values at the K sphere integration points).
// Per-VU storage is contiguous with the serial axis fastest, so a potential
// vector is one cache-friendly span and translation aggregation can treat a
// subgrid slab as a K x (boxes) matrix.
//
// HaloGrid is a per-VU (S1+2g)(S2+2g)(S3+2g) buffer holding the subgrid plus
// a ghost region g boxes deep on every face — the aliased-array fetch target
// of Section 3.3.1.

#include <cstddef>
#include <span>
#include <vector>

#include "hfmm/dp/layout.hpp"

namespace hfmm::dp {

class DistGrid {
 public:
  DistGrid(const BlockLayout& layout, std::size_t k);

  const BlockLayout& layout() const { return layout_; }
  std::size_t k() const { return k_; }

  /// Potential vector of a box addressed locally.
  std::span<double> at(std::size_t vu, std::int32_t lx, std::int32_t ly,
                       std::int32_t lz) {
    return {data_.data() + offset(vu, lx, ly, lz), k_};
  }
  std::span<const double> at(std::size_t vu, std::int32_t lx, std::int32_t ly,
                             std::int32_t lz) const {
    return {data_.data() + offset(vu, lx, ly, lz), k_};
  }

  /// Potential vector of a box addressed globally.
  std::span<double> at_global(const tree::BoxCoord& c);
  std::span<const double> at_global(const tree::BoxCoord& c) const;

  /// Whole buffer of one VU, local layout [lz][ly][lx][k].
  std::span<double> vu_data(std::size_t vu) {
    return {data_.data() + vu * vu_stride(), vu_stride()};
  }
  std::span<const double> vu_data(std::size_t vu) const {
    return {data_.data() + vu * vu_stride(), vu_stride()};
  }

  std::size_t vu_stride() const { return layout_.boxes_per_vu() * k_; }
  std::size_t total_values() const { return data_.size(); }

  void fill(double v);

 private:
  std::size_t offset(std::size_t vu, std::int32_t lx, std::int32_t ly,
                     std::int32_t lz) const {
    return vu * vu_stride() + layout_.local_index(lx, ly, lz) * k_;
  }

  BlockLayout layout_;
  std::size_t k_;
  std::vector<double> data_;
};

/// Per-VU subgrid-plus-ghosts buffer. Local layout [gz][gy][gx][k] with
/// gx in [0, S1+2g) etc.; the interior starts at (g, g, g).
class HaloGrid {
 public:
  HaloGrid(const BlockLayout& layout, std::size_t k, std::int32_t ghost);

  std::int32_t ghost() const { return g_; }
  std::size_t k() const { return k_; }
  std::int32_t ext_x() const { return ex_; }
  std::int32_t ext_y() const { return ey_; }
  std::int32_t ext_z() const { return ez_; }

  /// Value span at halo-local coordinates (may address ghosts).
  std::span<double> at(std::size_t vu, std::int32_t hx, std::int32_t hy,
                       std::int32_t hz) {
    return {data_.data() + offset(vu, hx, hy, hz), k_};
  }
  std::span<const double> at(std::size_t vu, std::int32_t hx, std::int32_t hy,
                             std::int32_t hz) const {
    return {data_.data() + offset(vu, hx, hy, hz), k_};
  }

  /// Interior box (subgrid coordinates): shifted by the ghost depth.
  std::span<const double> interior(std::size_t vu, std::int32_t lx,
                                   std::int32_t ly, std::int32_t lz) const {
    return at(vu, lx + g_, ly + g_, lz + g_);
  }

  std::size_t vu_stride() const {
    return static_cast<std::size_t>(ex_) * ey_ * ez_ * k_;
  }
  std::span<double> vu_data(std::size_t vu) {
    return {data_.data() + vu * vu_stride(), vu_stride()};
  }

  const BlockLayout& layout() const { return layout_; }

  void fill(double v);

 private:
  std::size_t offset(std::size_t vu, std::int32_t hx, std::int32_t hy,
                     std::int32_t hz) const {
    return vu * vu_stride() +
           ((static_cast<std::size_t>(hz) * ey_ + hy) * ex_ + hx) * k_;
  }

  BlockLayout layout_;
  std::size_t k_;
  std::int32_t g_;
  std::int32_t ex_, ey_, ez_;
  std::vector<double> data_;
};

}  // namespace hfmm::dp
