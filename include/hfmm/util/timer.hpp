#pragma once
// Wall-clock timing and a per-phase time/operation breakdown.
//
// The paper reports per-phase times (hierarchy traversal, near field, sort,
// ...) and the communication fraction; PhaseBreakdown is the accumulator that
// every executor writes into so benches can print the same rows.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace hfmm {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulated time, flop count, and data traffic for one phase.
/// `comm_bytes` counts off-processor traffic on the simulated machine;
/// `bytes_moved` counts local data motion (gather/scatter copies feeding the
/// aggregated GEMMs — the paper's Section 3.4 copy cost), measured where the
/// copies happen so the data-motion benches read real numbers. `allocs`
/// counts heap-growth events (buffer or plan (re)builds) charged to the
/// phase — a warm solve on a reused plan/workspace should report ~0.
struct PhaseStats {
  double seconds = 0.0;
  std::uint64_t flops = 0;
  std::uint64_t comm_bytes = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t allocs = 0;
  /// Active-box occupancy of the phase: boxes the phase actually visited
  /// vs. the dense box count it would visit without sparse level sets.
  std::uint64_t boxes_active = 0;
  std::uint64_t boxes_total = 0;
  /// Particle pair interactions the phase evaluated (the "near" phase): the
  /// direct comparison between the uniform leaf level and the adaptive leaf
  /// front, surfaced in the bench JSON so pair-count regressions fail fast.
  std::uint64_t pairs = 0;
  /// Cost-model imbalance of the phase's worst stage: (max chunk cost) /
  /// (mean chunk cost), >= 1.0; 0 when the phase ran unweighted. Merged by
  /// max — one overloaded chunk anywhere is what bounds the speedup.
  double cost_imbalance = 0.0;
  /// Incremental-stepping counters (DESIGN.md Section 14). On the "sort"
  /// phase: `movers` counts particles whose leaf box changed since the
  /// previous solve and `plan_reuse` counts in-place repairs (no full
  /// counting sort). On the "active" phase: `plan_reuse` counts reused
  /// structures (active level sets, cost model) and `chunks_rebuilt` counts
  /// cost-model entries recomputed by the diff-driven patch.
  std::uint64_t movers = 0;
  std::uint64_t chunks_rebuilt = 0;
  std::uint64_t plan_reuse = 0;
  /// Distributed-execution counters (DESIGN.md Section 18), reported on the
  /// "let" phase: payload bytes pushed through / popped from the message
  /// fabric, and the local-essential-tree content received — ghost bodies
  /// for the near field, far/local potential vectors ("cells") for the
  /// translation chain. Zero outside ExecutionMode::kDistributed.
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t let_bodies = 0;
  std::uint64_t let_cells = 0;
  /// Live ScopedPhaseTimer count on this phase (not merged by +=): lets
  /// nested timers on the same stats count wall time exactly once.
  int timing_depth = 0;

  PhaseStats& operator+=(const PhaseStats& o) {
    seconds += o.seconds;
    flops += o.flops;
    comm_bytes += o.comm_bytes;
    bytes_moved += o.bytes_moved;
    allocs += o.allocs;
    boxes_active += o.boxes_active;
    boxes_total += o.boxes_total;
    pairs += o.pairs;
    if (o.cost_imbalance > cost_imbalance) cost_imbalance = o.cost_imbalance;
    movers += o.movers;
    chunks_rebuilt += o.chunks_rebuilt;
    plan_reuse += o.plan_reuse;
    bytes_sent += o.bytes_sent;
    bytes_recv += o.bytes_recv;
    let_bodies += o.let_bodies;
    let_cells += o.let_cells;
    return *this;
  }
};

/// Named per-phase accumulator. Phase names used by the FMM pipeline:
/// "sort", "active" (sparse active-set derivation), "p2m", "upward",
/// "interactive", "downward", "l2p", "near",
/// "precompute", "plan" (per-depth solve-plan construction: supernode
/// gather plans + near-field interaction lists; zero seconds/allocs on a
/// warm solve), "workspace" (allocs = workspace buffer growth events this
/// solve), and "comm" (communication-only time, also folded into the owning
/// phase's seconds).
class PhaseBreakdown {
 public:
  PhaseStats& operator[](const std::string& phase) { return phases_[phase]; }
  const std::map<std::string, PhaseStats>& phases() const { return phases_; }

  double total_seconds() const;
  std::uint64_t total_flops() const;
  std::uint64_t total_comm_bytes() const;
  std::uint64_t total_bytes_moved() const;
  std::uint64_t total_allocs() const;
  void clear() { phases_.clear(); }

  /// Merge another breakdown into this one (phase-wise sum).
  PhaseBreakdown& operator+=(const PhaseBreakdown& o);

 private:
  std::map<std::string, PhaseStats> phases_;
};

/// RAII helper: adds elapsed wall time to `stats.seconds` on destruction.
/// Nesting-safe: when timers on the SAME PhaseStats nest (a phase helper
/// that itself opens a phase timer), only the outermost one records its
/// elapsed time — inner timers would otherwise double-count the same wall
/// interval. Not for concurrent use on one PhaseStats; concurrent stages
/// report into per-worker stats that are merged afterwards (hfmm::exec).
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(PhaseStats& stats) : stats_(stats) {
    outermost_ = stats_.timing_depth++ == 0;
  }
  ~ScopedPhaseTimer() {
    --stats_.timing_depth;
    if (outermost_) stats_.seconds += timer_.seconds();
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseStats& stats_;
  WallTimer timer_;
  bool outermost_ = false;
};

}  // namespace hfmm
