#pragma once
// Plain-text table printer for paper-style benchmark output.
//
// Every bench binary prints rows shaped like the table/figure it reproduces;
// this keeps the formatting in one place.

#include <iosfwd>
#include <string>
#include <vector>

namespace hfmm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision, integers plainly.
  static std::string num(double v, int precision = 3);
  static std::string num(std::uint64_t v);
  static std::string percent(double fraction, int precision = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace hfmm
