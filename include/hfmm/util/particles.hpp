#pragma once
// Particle storage and synthetic distributions.
//
// Storage is structure-of-arrays: the near-field kernel streams x/y/z/q
// contiguously, and the coordinate sort permutes each attribute array with a
// single gather. This mirrors the paper's "collection of 1-D arrays, one for
// each attribute" input format (Section 3.1).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hfmm/util/vec3.hpp"

namespace hfmm {

/// Axis-aligned bounding box.
struct Box3 {
  Vec3 lo{0, 0, 0};
  Vec3 hi{1, 1, 1};

  constexpr Vec3 center() const { return 0.5 * (lo + hi); }
  constexpr Vec3 extent() const { return hi - lo; }
  /// Longest edge — hierarchies are built on the cube of this side length.
  double max_side() const;
  bool contains(const Vec3& p) const;
};

/// A system of N point charges/masses in structure-of-arrays layout.
class ParticleSet {
 public:
  ParticleSet() = default;
  explicit ParticleSet(std::size_t n) { resize(n); }

  void resize(std::size_t n);
  std::size_t size() const { return x_.size(); }
  bool empty() const { return x_.empty(); }

  std::span<double> x() { return x_; }
  std::span<double> y() { return y_; }
  std::span<double> z() { return z_; }
  std::span<double> q() { return q_; }
  std::span<const double> x() const { return x_; }
  std::span<const double> y() const { return y_; }
  std::span<const double> z() const { return z_; }
  std::span<const double> q() const { return q_; }

  Vec3 position(std::size_t i) const { return {x_[i], y_[i], z_[i]}; }
  double charge(std::size_t i) const { return q_[i]; }
  void set(std::size_t i, const Vec3& p, double charge) {
    x_[i] = p.x; y_[i] = p.y; z_[i] = p.z; q_[i] = charge;
  }

  /// Optional per-particle atom-type channel, consumed by short-range
  /// kernels (van der Waals Rmin/eps table lookups). Empty by default —
  /// solves that need types treat absent as all type 0. When present it is
  /// permuted through the coordinate sort alongside the other attributes.
  bool has_types() const { return !type_.empty(); }
  std::span<std::int32_t> type() { return type_; }
  std::span<const std::int32_t> type() const { return type_; }
  /// Allocates the type channel (zero-filled) if absent.
  void ensure_types() { type_.resize(x_.size(), 0); }
  void set_type(std::size_t i, std::int32_t t) {
    ensure_types();
    type_[i] = t;
  }

  /// Tight bounding box of the positions (degenerate box if empty).
  Box3 bounds() const;

  /// Reorder all attributes by `perm`: out[i] = in[perm[i]].
  void permute(std::span<const std::uint32_t> perm);

  double total_charge() const;

 private:
  std::vector<double> x_, y_, z_, q_;
  std::vector<std::int32_t> type_;  // empty (no types) or size()
};

/// N particles uniformly distributed in `box`, charges uniform in [qlo, qhi].
ParticleSet make_uniform(std::size_t n, const Box3& box, std::uint64_t seed,
                         double qlo = 1.0, double qhi = 1.0);

/// Plummer-model sphere (astrophysical density profile), rescaled into `box`.
/// Used as the "nonuniform" workload; the paper reports uniform distributions
/// but its near-uniform claims are exercised with this.
ParticleSet make_plummer(std::size_t n, const Box3& box, std::uint64_t seed,
                         double mass = 1.0);

/// Two Plummer clusters separated along x — the classic "galaxy collision"
/// initial condition used by the example applications.
ParticleSet make_two_clusters(std::size_t n, const Box3& box, std::uint64_t seed);

/// Overall-neutral plasma: positions uniform, half the charges +1, half -1.
ParticleSet make_plasma(std::size_t n, const Box3& box, std::uint64_t seed);

}  // namespace hfmm
