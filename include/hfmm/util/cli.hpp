#pragma once
// Minimal command-line option parser shared by benches and examples.
//
// Supports `--name value` and `--flag`; anything unrecognized is an error so
// typos in sweep scripts fail loudly.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hfmm {

class Cli {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get(const std::string& name, std::int64_t def) const;
  double get(const std::string& name, double def) const;
  bool flag(const std::string& name) const { return has(name); }

  /// Names seen on the command line but never queried — used by benches to
  /// reject typos after all get() calls are done.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace hfmm
