#pragma once
// 3-D bit interleaving (Morton / Z-order keys).
//
// The coordinate sort of Section 3.2 builds its keys from *segments* of the
// box coordinates (VU-address bits above local-address bits); plain Morton
// keys are the degenerate case with no VU/local split and are used by the
// Barnes-Hut baseline and by tests.

#include <cstdint>

namespace hfmm {

/// Spread the low 21 bits of v so that bit i lands at position 3i.
constexpr std::uint64_t spread_bits3(std::uint64_t v) {
  v &= 0x1fffffULL;                         // 21 bits -> 63-bit result
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

/// Inverse of spread_bits3: compact every third bit into the low 21 bits.
constexpr std::uint64_t compact_bits3(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffffULL;
  return v;
}

/// Morton key: z bits most significant, matching the paper's key layout
/// z..zy..yx..x (Figure 5 generalized to three dimensions).
constexpr std::uint64_t morton_encode(std::uint32_t ix, std::uint32_t iy,
                                      std::uint32_t iz) {
  return spread_bits3(ix) | (spread_bits3(iy) << 1) | (spread_bits3(iz) << 2);
}

struct MortonCoords {
  std::uint32_t ix, iy, iz;
};

constexpr MortonCoords morton_decode(std::uint64_t key) {
  return {static_cast<std::uint32_t>(compact_bits3(key)),
          static_cast<std::uint32_t>(compact_bits3(key >> 1)),
          static_cast<std::uint32_t>(compact_bits3(key >> 2))};
}

}  // namespace hfmm
