#pragma once
// Fixed-size thread pool with a parallel_for primitive.
//
// Used by the shared-memory executor (threads over boxes) and by the
// data-parallel machine simulator (threads over virtual units). Work is
// partitioned statically into contiguous chunks — the paper's workloads are
// uniform, so static partitioning matches its load-balance discussion
// (Section 3.5) and keeps execution deterministic per chunk.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hfmm {

class ThreadPool {
 public:
  /// `n_threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // + calling thread

  /// Runs body(i) for i in [begin, end), split into size() contiguous chunks.
  /// The calling thread executes one chunk; blocks until all chunks finish.
  /// Exceptions from body propagate (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Runs body(chunk_begin, chunk_end) per chunk — for kernels that carry
  /// per-chunk state (accumulators, scratch buffers).
  void parallel_chunks(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t, std::size_t)>& body);

  /// Process-wide pool sized by hardware_concurrency.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void(std::size_t, std::size_t)> body;
    std::size_t begin = 0, end = 0, chunks = 0;
  };
  void worker_loop(std::size_t rank);
  void run_task(const Task& task, std::size_t chunk_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task task_;
  std::size_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace hfmm
