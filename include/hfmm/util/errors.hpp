#pragma once
// Error norms used by the accuracy experiments.
//
// The paper (and the literature it surveys, Table 1) reports error per
// particle relative to the mean field magnitude of the system; we provide
// both that and plain max/RMS relative error.

#include <span>

#include "hfmm/util/vec3.hpp"

namespace hfmm {

struct ErrorNorms {
  double max_abs = 0.0;   ///< max_i |a_i - b_i|
  double max_rel = 0.0;   ///< max_i |a_i - b_i| / |b_i|
  double rms_rel = 0.0;   ///< sqrt(mean((a_i-b_i)^2)) / sqrt(mean(b_i^2))
  double rel_to_mean = 0.0;  ///< max_i |a_i - b_i| / mean_j |b_j|
};

/// Compare scalar fields: `approx` against ground truth `exact`.
ErrorNorms compare_fields(std::span<const double> approx,
                          std::span<const double> exact);

/// Compare vector fields (e.g. accelerations); norms over |Δv|.
ErrorNorms compare_fields(std::span<const Vec3> approx,
                          std::span<const Vec3> exact);

/// Number of correct significant digits implied by a relative error.
double digits(double rel_error);

}  // namespace hfmm
