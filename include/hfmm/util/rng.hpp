#pragma once
// Deterministic, seedable random number generation.
//
// All experiments in the benchmark harness must be reproducible run-to-run,
// so we carry our own tiny xoshiro256** generator instead of relying on the
// (implementation-defined) standard library distributions.

#include <cstdint>

namespace hfmm {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  constexpr std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Standard normal via Box–Muller (polar-free, uses two uniforms).
  double normal();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace hfmm
