#pragma once
// Typed HFMM_* environment parsing, in one place.
//
// Every dial the library reads from the environment (kernel backend
// overrides, hierarchy/stepping defaults, vdW window) goes through these
// helpers instead of hand-rolled getenv + strtod blocks scattered across
// subsystems. The contract is uniform:
//   * unset or empty variable -> the caller's fallback, silently;
//   * a well-formed value inside the documented domain -> that value;
//   * anything else -> one stderr line naming the variable, the rejected
//     text and the expected domain, then the fallback. A malformed value is
//     NEVER silently reinterpreted (the old boolean parse treated
//     HFMM_STEP_INCREMENTAL=yes and =garbage identically as "on").
// Call sites keep their own `static const` caching; these functions parse
// on every call and are safe to call concurrently (they only read the
// environment and write stderr).

#include <cstddef>
#include <span>

namespace hfmm::env {

/// Boolean dial. Accepts 0/1/true/false/on/off/yes/no (case-sensitive,
/// matching the documented spellings). Anything else warns and falls back.
bool parse_bool(const char* name, bool fallback);

/// Integer dial in [lo, hi]. `what` finishes the warning, e.g.
/// "a depth in [2, 10]".
long parse_int(const char* name, long fallback, long lo, long hi,
               const char* what);

/// Floating-point dial in [lo, hi] (finite). `what` as above.
double parse_double(const char* name, double fallback, double lo, double hi,
                    const char* what);

/// Enumerated dial: returns the index of the matching choice, or
/// `fallback_index` (with a warning listing the choices) when the value
/// matches none of them.
std::size_t parse_choice(const char* name,
                         std::span<const char* const> choices,
                         std::size_t fallback_index);

}  // namespace hfmm::env
