#pragma once
// Small fixed-size 3-vector used for positions, forces, and sphere points.
//
// Deliberately a plain aggregate: the hot loops in the near-field kernel and
// the sphere-approximation evaluators operate on structure-of-arrays data and
// only use Vec3 at interface boundaries, so this type favours clarity over
// SIMD cleverness.

#include <cmath>
#include <cstddef>
#include <iosfwd>

namespace hfmm {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) { return *this *= (1.0 / s); }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }

  /// Unit vector in the same direction; the zero vector maps to itself.
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : *this;
  }

  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
};

std::ostream& operator<<(std::ostream& os, const Vec3& v);

}  // namespace hfmm
