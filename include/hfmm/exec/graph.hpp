#pragma once
// hfmm::exec — the phase-graph execution layer.
//
// The paper's program is literally a sequence of data-parallel phases
// (coordinate sort, upward T1, interactive T2, downward T3, near field —
// Section 3, Figures 5-10). Instead of each execution mode hand-rolling
// that sequence, a solve is expressed once as a PhaseGraph: typed stages
// (Sort, P2M, UpwardLevel(l), InteractiveLevel(l), DownwardLevel(l), L2P,
// NearField, Accumulate) with explicit predecessor edges, run by a
// work-stealing-free scheduler on the existing ThreadPool.
//
// A stage owns an index range [0, range) that the scheduler splits into a
// fixed number of chunks (decided at build time, so the floating-point
// grouping — and therefore the result bits — never depends on scheduling).
// Two run modes:
//   * kInline — topological order on the calling thread; chunks of a stage
//     execute sequentially in index order. The sequential mode, and the
//     mode for stage bodies that internally fan out onto a pool themselves
//     (the simulated data-parallel machine).
//   * kConcurrent — the whole graph runs inside one ThreadPool region;
//     every pool worker loops over a ready queue (mutex-protected claim,
//     atomic dependency/chunk counters for completion). Independent stages
//     overlap: the near field runs concurrently with the entire far-field
//     chain, meeting it only at the accumulate stage.
//
// Stage bodies report flops/bytes into a per-worker PhaseStats (no shared
// counters on the hot path); per-stage wall seconds come from the recorded
// start/end timestamps and everything is merged into the caller's
// PhaseBreakdown exactly once at graph completion. The timestamps are also
// exposed as a StageTiming timeline so overlap is observable, not just
// asserted.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hfmm/util/thread_pool.hpp"
#include "hfmm/util/timer.hpp"

namespace hfmm::exec {

using NodeId = std::size_t;

/// One executed stage of a run: wall-clock interval (seconds relative to
/// the start of the graph run), chunk split, and which workers ran it.
struct StageTiming {
  std::string stage;          ///< stage name, e.g. "interactive:L3"
  std::string phase;          ///< breakdown phase it reports into
  double start_seconds = 0.0; ///< first chunk claimed
  double end_seconds = 0.0;   ///< last chunk finished
  std::size_t chunks = 0;     ///< fixed chunk split of the stage
  std::size_t workers = 0;    ///< distinct workers that executed chunks
  /// Cost-model imbalance of the chunk split: (max chunk cost) / (mean
  /// chunk cost), >= 1.0 for weighted stages, 0 for unweighted ones.
  double cost_imbalance = 0.0;
};

enum class RunMode {
  kInline,      ///< topological order on the calling thread
  kConcurrent,  ///< ready-queue scheduler across the pool's workers
};

/// A DAG of chunked stages. Build with add()/depend(), execute with run().
/// The graph is a per-solve object: bodies capture references to the
/// solve's plan/workspace/result and are invoked as
///   body(chunk, lo, hi, stats)
/// where [lo, hi) is the chunk's slice of [0, range), `chunk` its index
/// (stable across runs — usable as a scratch-slot key), and `stats` a
/// per-worker PhaseStats for flop/byte/alloc reporting (never seconds;
/// stage wall time is recorded by the scheduler).
class PhaseGraph {
 public:
  using ChunkBody = std::function<void(std::size_t chunk, std::size_t lo,
                                       std::size_t hi, PhaseStats& stats)>;

  PhaseGraph();
  ~PhaseGraph();
  PhaseGraph(const PhaseGraph&) = delete;
  PhaseGraph& operator=(const PhaseGraph&) = delete;

  /// Adds a stage over [0, range) split into min(range, max_chunks) chunks
  /// (max_chunks == 0 means one chunk per pool worker, decided at run()).
  /// Stages with a larger `priority` yield the ready queue to lower ones —
  /// the far-field critical path runs at 0, the near field fills idle
  /// workers at 1. Returns the node id used for depend().
  NodeId add(std::string name, std::string phase, std::size_t range,
             std::size_t max_chunks, ChunkBody body, int priority = 0);

  /// Adds a cost-weighted stage over [0, weights.size()): the range is
  /// split into at most min(weights.size(), max_chunks) contiguous chunks
  /// of near-equal total weight (per-item costs from the caller's cost
  /// model — near-field pair counts, translation counts), instead of equal
  /// item counts. The split is computed when the graph runs, from the
  /// weights alone, so it is independent of scheduling — results stay
  /// bitwise-reproducible. The achieved (max/mean) chunk-cost ratio is
  /// reported as StageTiming::cost_imbalance and max-merged into the
  /// phase's PhaseStats.
  NodeId add_weighted(std::string name, std::string phase,
                      std::span<const std::uint64_t> weights,
                      std::size_t max_chunks, ChunkBody body,
                      int priority = 0);

  /// Adds a single-chunk stage (serial body).
  NodeId add_serial(std::string name, std::string phase,
                    std::function<void(PhaseStats&)> body, int priority = 0);

  /// Declares that `node` cannot start before `pred` has completed.
  void depend(NodeId node, NodeId pred);

  std::size_t size() const { return nodes_.size(); }

  /// Executes the graph. Merges per-stage wall seconds and per-worker
  /// flop/byte/alloc counters into `breakdown`, and appends one StageTiming
  /// per stage (in node-insertion order) to `timeline` when non-null.
  /// Exceptions from stage bodies propagate (first one wins). The graph is
  /// single-use: run() may only be called once.
  void run(ThreadPool& pool, RunMode mode, PhaseBreakdown& breakdown,
           std::vector<StageTiming>* timeline = nullptr);

 private:
  struct Node;
  struct RunState;
  void run_inline(ThreadPool& pool, PhaseBreakdown& breakdown,
                  std::vector<StageTiming>* timeline);
  void run_concurrent(ThreadPool& pool, PhaseBreakdown& breakdown,
                      std::vector<StageTiming>* timeline);
  void finish(std::size_t workers, std::vector<PhaseBreakdown>& worker_stats,
              PhaseBreakdown& breakdown, std::vector<StageTiming>* timeline);

  // Pointer-stable storage: nodes hold atomics (immovable) and the header
  // only forward-declares Node.
  std::vector<std::unique_ptr<Node>> nodes_;
  bool ran_ = false;
};

/// Multi-graph runner for the owner-computes distributed executor: runs
/// each graph on its own dedicated std::thread in kInline mode and joins
/// them all. Rank graphs contain stage bodies that BLOCK on message
/// receives (hfmm::dist::Fabric), which is safe here precisely because
/// every graph owns a whole thread — pool workers never block on a
/// message, and a send posted by one graph unblocks the matching recv in
/// another. `breakdowns` must have one entry per graph; `timelines`, when
/// non-null, likewise. The first exception thrown by any graph is
/// rethrown after all threads joined (the caller must ensure the other
/// graphs cannot then block forever on a crashed peer — the LET schedule
/// posts every send before any dependent recv, see DESIGN.md Section 18).
void run_graphs(std::span<PhaseGraph* const> graphs,
                std::span<PhaseBreakdown> breakdowns,
                std::vector<std::vector<StageTiming>>* timelines = nullptr);

/// Splits items [0, weights.size()) into at most `max_chunks` contiguous
/// chunks of near-equal total weight (greedy prefix targets; every chunk
/// gets at least one item). Returns the chunk bounds: bounds[c] .. bounds
/// [c+1] is chunk c, bounds.front() == 0, bounds.back() == weights.size().
/// Deterministic in the weights — the building block of add_weighted,
/// exposed for tests and for callers that need the split itself.
std::vector<std::size_t> weighted_split(
    std::span<const std::uint64_t> weights, std::size_t max_chunks);

}  // namespace hfmm::exec
