#pragma once
// Integration rules on the unit sphere.
//
// Anderson's method (paper Section 2.4, Table 2) chooses an integration order
// D, then the rule with fewest points K that is exact for spherical
// polynomials of degree <= D. His Table 2 pairs (D=5, K=12) ... (D=14, K=72),
// the last via McLaren's 72-point rule. We provide:
//
//   * the exact 12-point icosahedral rule (degree 5) — matches the paper,
//   * Gauss-Legendre x equispaced-azimuth product rules of any degree,
//   * a 72-point product rule (6 x 12, degree 11) keeping the paper's K=72
//     compute shape (documented substitution for McLaren's degree-14 rule),
//   * Fibonacci-spiral point sets with least-squares (minimum-norm) weights
//     fit to a requested degree.
//
// Weights are normalized to SUM TO ONE, i.e. sum_i w_i f(s_i) approximates
// the *mean* of f over the sphere. With this convention the n = 0 term of the
// Poisson kernel reproduces a monopole exactly.

#include <cstddef>
#include <string>
#include <vector>

#include "hfmm/util/vec3.hpp"

namespace hfmm::quadrature {

struct SphereRule {
  std::vector<Vec3> points;     ///< unit vectors s_i
  std::vector<double> weights;  ///< sum to 1
  int degree = 0;               ///< exact for spherical polys of degree <= this
  std::string name;

  std::size_t size() const { return points.size(); }

  /// Max over spherical harmonics of degree l in [1, lmax] of
  /// |sum_i w_i Y_lm(s_i)| — zero (to rounding) for l <= degree.
  double worst_moment(int lmax) const;
};

/// 12 icosahedron vertices, equal weights; exact through degree 5.
SphereRule icosahedron_rule();

/// Product rule: n_theta Gauss-Legendre colatitudes x n_phi equispaced
/// azimuths. Exact through degree min(2*n_theta - 1, n_phi - 1).
SphereRule product_rule(int n_theta, int n_phi);

/// Smallest product rule exact through degree D:
/// n_theta = ceil((D+1)/2), n_phi = D+1.
SphereRule product_rule_for_degree(int degree);

/// K Fibonacci-spiral points with minimum-norm weights fit so that all
/// harmonics of degree <= fit_degree integrate exactly (when feasible, i.e.
/// (fit_degree+1)^2 <= K); `degree` records the verified exactness.
SphereRule fibonacci_rule(int k, int fit_degree);

/// The rule used for integration order D, following the paper's Table 2
/// pairing where we can and the documented substitutions where we cannot:
///   D <= 5          -> icosahedron (K = 12), exactly as the paper;
///   otherwise       -> smallest product rule of degree D.
SphereRule rule_for_order(int order);

/// The paper's headline configurations: K = 12 (D = 5) and K = 72. The K = 72
/// rule is the 6 x 12 product rule (degree 11) standing in for McLaren's
/// degree-14 rule; see DESIGN.md substitution table.
SphereRule rule_k12();
SphereRule rule_k72();

}  // namespace hfmm::quadrature
