#pragma once
// Legendre polynomials, Gauss-Legendre nodes, and real spherical harmonics.
//
// P_n appears in Anderson's Poisson-formula kernels (paper eqs. (1)-(3));
// Gauss-Legendre nodes build product integration rules on the sphere; real
// spherical harmonics are used to verify rule exactness and to fit
// least-squares quadrature weights.

#include <cstddef>
#include <span>
#include <vector>

#include "hfmm/util/vec3.hpp"

namespace hfmm::quadrature {

/// Fills p[0..nmax] with P_n(x) via the three-term recurrence.
void legendre_all(int nmax, double x, std::span<double> p);

/// Fills p[n] = P_n(x) and dp[n] = P_n'(x) for n = 0..nmax.
void legendre_all_derivs(int nmax, double x, std::span<double> p,
                         std::span<double> dp);

/// Single value P_n(x).
double legendre(int n, double x);

struct GaussLegendre {
  std::vector<double> nodes;    ///< in (-1, 1), ascending
  std::vector<double> weights;  ///< sum to 2
};

/// n-point Gauss-Legendre rule on [-1, 1]; exact for degree 2n-1.
GaussLegendre gauss_legendre(int n);

/// Number of real spherical harmonics of degree <= lmax: (lmax+1)^2.
constexpr std::size_t sh_count(int lmax) {
  return static_cast<std::size_t>(lmax + 1) * static_cast<std::size_t>(lmax + 1);
}

/// Real spherical harmonics in the "4-pi" (geodesy) normalization:
/// mean over the sphere of Y_lm^2 is 1 and Y_00 == 1, so a quadrature rule
/// with weights summing to 1 must satisfy sum_i w_i Y_lm(s_i) = [lm == 00].
/// Output order: (l, m) with m = -l..l, index l*(l+1)+m.
/// `s` must be a unit vector.
void real_sph_harmonics(int lmax, const Vec3& s, std::span<double> out);

}  // namespace hfmm::quadrature
