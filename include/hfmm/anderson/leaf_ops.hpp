#pragma once
// Particle-box interactions at the leaf level (paper Section 3.2).
//
// P2M: the outer approximation of a leaf box is the exact potential, due to
// the particles inside the box, sampled at the K sphere points.
// L2P: the local-field potential (inner approximation) of a leaf box is
// evaluated at every particle inside it; the gradient variant adds forces.

#include <span>

#include "hfmm/anderson/params.hpp"
#include "hfmm/util/vec3.hpp"

namespace hfmm::anderson {

/// Accumulates into `g` (size K) the potential at the sphere points
/// (center + a * s_i) due to the given particles: g_i += sum_k q_k / dist.
void p2m(const Params& params, double a, const Vec3& center,
         std::span<const double> px, std::span<const double> py,
         std::span<const double> pz, std::span<const double> pq,
         std::span<double> g);

/// Adds the inner approximation's potential to `phi` for each particle.
void l2p(const Params& params, double a, const Vec3& center,
         std::span<const double> g, std::span<const double> px,
         std::span<const double> py, std::span<const double> pz,
         std::span<double> phi);

/// Adds potential AND field gradient (d phi / d x) per particle.
void l2p_gradient(const Params& params, double a, const Vec3& center,
                  std::span<const double> g, std::span<const double> px,
                  std::span<const double> py, std::span<const double> pz,
                  std::span<double> phi, std::span<Vec3> grad);

/// Flop counts for the efficiency accounting (paper's metric).
std::uint64_t p2m_flops(std::size_t k, std::size_t particles);
std::uint64_t l2p_flops(std::size_t k, std::size_t particles, int truncation);

}  // namespace hfmm::anderson
