#pragma once
// Translation operators as K x K matrices (paper Sections 2.4 and 3.3.3,
// Figure 2).
//
// Every translation in Anderson's method evaluates a source-sphere
// approximation at the K integration points of a destination sphere, so it
// is a matrix-vector product g_dst (+)= T g_src where
//   T[j][i] = w_i * kernel(s_i, (c_dst + a_dst s_j) - c_src).
// T depends only on the displacement in units of the box side and on the
// radius ratios — NOT on the level — so one set of matrices serves the whole
// hierarchy:
//   T1: 8 matrices (child outer -> parent outer), one per octant;
//   T3: 8 matrices (parent inner -> child inner);
//   T2: (4d+3)^3 = 1331 matrices (source outer -> target inner) indexed by
//       the offset cube, built for ALL offsets for ease of indexing exactly
//       as the paper does (Section 3.3.2); near-field entries are unused;
//   supernode T2: per octant, matrices for parent-level sources standing in
//       for complete sibling octets (paper Section 2.3).

#include <cstddef>
#include <vector>

#include "hfmm/anderson/params.hpp"
#include "hfmm/tree/interaction_lists.hpp"
#include "hfmm/util/vec3.hpp"

namespace hfmm::anderson {

/// A dense K x K translation matrix, row-major: row j weights the source
/// values that produce destination point j.
struct TranslationMatrix {
  std::size_t k = 0;
  std::vector<double> m;  ///< k * k entries

  const double* data() const { return m.data(); }
  double* data() { return m.data(); }
};

/// Approximate flop count of constructing one K x K translation matrix
/// (per entry: a Legendre recurrence of truncation+1 terms plus geometry).
/// Used by the precompute-trade-off benches to model construction cost on
/// the simulated machine.
inline std::uint64_t translation_matrix_flops(const Params& params) {
  const std::uint64_t k = params.k();
  return k * k * (static_cast<std::uint64_t>(params.truncation + 1) * 9 + 14);
}

/// Builds T[j][i] = w_i * outer_kernel(s_i, dst_pt_j - src_center) where
/// dst_pt_j = dst_center + a_dst * s_j. Positions in arbitrary (consistent)
/// units. Used for T1 and T2.
TranslationMatrix build_outer_to_points(const Params& params, double a_src,
                                        double a_dst,
                                        const Vec3& dst_center_minus_src);

/// Same with the inner kernel (source is an inner approximation). Used for
/// T3 (parent inner evaluated at child inner points).
TranslationMatrix build_inner_to_points(const Params& params, double a_src,
                                        double a_dst,
                                        const Vec3& dst_center_minus_src);

/// The full set of precomputed matrices for one parameter choice and
/// near-field separation d. All geometry is expressed in units of the
/// TARGET box side (= child side for T1/T3).
class TranslationSet {
 public:
  /// `with_supernodes` controls whether the per-octant supernode matrices
  /// are materialized (they add 8 x 98 x K^2 doubles; skip when the solver
  /// runs without the supernode optimization).
  TranslationSet(const Params& params, int separation,
                 bool with_supernodes = true);

  const Params& params() const { return params_; }
  int separation() const { return separation_; }
  std::size_t k() const { return params_.k(); }

  /// T1: child (octant o) outer -> parent outer. Child side = 1, parent = 2.
  const TranslationMatrix& t1(int octant) const { return t1_[octant]; }
  /// T3: parent inner -> child (octant o) inner.
  const TranslationMatrix& t3(int octant) const { return t3_[octant]; }
  /// T2: source outer at `offset` (target-level box units) -> target inner.
  const TranslationMatrix& t2(const tree::Offset& offset) const {
    return t2_[tree::offset_cube_index(offset, separation_)];
  }
  /// Supernode T2 for entry `idx` of supernode_list(octant).
  const TranslationMatrix& supernode_t2(int octant, std::size_t idx) const {
    return supernode_[octant][idx];
  }
  const std::vector<tree::SupernodeEntry>& supernode_list(int octant) const {
    return supernode_entries_[octant];
  }

  std::size_t t2_count() const { return t2_.size(); }

  /// Total resident bytes of all matrices (the paper's memory discussion:
  /// 1331 K^2 doubles is 1.53 MB at K = 12, 53.9 MB at K = 72).
  std::size_t resident_bytes() const;

  /// Builders used by the precompute benches (Figures 8 and 9): construct
  /// matrix `i` of the respective family into `out` (size k*k).
  void build_t1_into(int octant, std::span<double> out) const;
  void build_t2_into(std::size_t cube_index, std::span<double> out) const;

 private:
  Params params_;
  int separation_;
  std::vector<TranslationMatrix> t1_;
  std::vector<TranslationMatrix> t3_;
  std::vector<TranslationMatrix> t2_;
  std::vector<std::vector<tree::SupernodeEntry>> supernode_entries_;
  std::vector<std::vector<TranslationMatrix>> supernode_;
};

}  // namespace hfmm::anderson
