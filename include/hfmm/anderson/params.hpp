#pragma once
// Parameter selection for Anderson's method (paper Section 2.4, Table 2).
//
// An integration order D picks a sphere rule (K points); the kernel series
// is truncated at M terms; outer/inner sphere radii are fractions of the box
// side. Defaults follow Anderson's guidance (M about D/2, spheres near the
// box circumscribing radius) calibrated so the paper's accuracy claims hold:
// about 4 digits at D = 5 (K = 12) and 6-7 digits at D = 14.

#include <stdexcept>

#include "hfmm/quadrature/sphere_rule.hpp"

namespace hfmm::anderson {

struct Params {
  int order = 5;          ///< integration order D
  int truncation = 2;     ///< M — series truncated after n = M
  double outer_ratio = 1.4;   ///< outer sphere radius / box side
  double inner_ratio = 1.4;   ///< inner sphere radius / box side
  quadrature::SphereRule rule;

  std::size_t k() const { return rule.size(); }

  void validate() const {
    if (order < 0) throw std::invalid_argument("Params: order must be >= 0");
    if (truncation < 0)
      throw std::invalid_argument("Params: truncation must be >= 0");
    if (outer_ratio <= 0.0 || inner_ratio <= 0.0)
      throw std::invalid_argument("Params: sphere ratios must be positive");
    if (rule.size() == 0)
      throw std::invalid_argument("Params: empty integration rule");
  }
};

/// Default parameters for integration order D: rule from the Table 2 pairing
/// (with documented substitutions), M = floor(D/2), circumscribing spheres.
Params params_for_order(int order);

/// The paper's two headline configurations.
Params params_d5_k12();   ///< D = 5,  K = 12 — ~4 digits
Params params_d14_k72();  ///< D = 14, K = 72 — ~6-7 digits (see DESIGN.md)

}  // namespace hfmm::anderson
