#pragma once
// The Poisson-formula kernels of Anderson's method (paper eqs. (1)-(3)).
//
// Outer (far-field) approximation, for x OUTSIDE the source sphere:
//   Psi(x) ~= sum_i [ sum_{n=0}^{M} (2n+1) (a/r)^{n+1} P_n(s_i . x_hat) ]
//             g(a s_i) w_i                                      (paper eq. 2)
//
// Inner (local-field) approximation, for x INSIDE the sphere:
//   Psi(x) ~= sum_i [ sum_{n=0}^{M} (2n+1) (r/a)^{n}   P_n(s_i . x_hat) ]
//             g(a s_i) w_i                                      (paper eq. 3)
//
// (The interior Poisson kernel carries exponent n — interior harmonics grow
// as r^n — so a constant boundary field reproduces the constant exactly;
// the n+1 in the truncated source is an OCR artifact of the preprint.)
//
// Weights are normalized to sum to 1 (see sphere_rule.hpp), making the n = 0
// outer term reproduce a monopole q/r exactly.

#include <span>

#include "hfmm/quadrature/sphere_rule.hpp"
#include "hfmm/util/vec3.hpp"

namespace hfmm::anderson {

/// Truncated outer Poisson kernel: sum_{n<=M} (2n+1) (a/r)^{n+1} P_n(u) with
/// r = |x_rel|, u = s . x_rel / r. `x_rel` is relative to the sphere centre.
double outer_kernel(int truncation, double a, const Vec3& s, const Vec3& x_rel);

/// Truncated inner Poisson kernel: sum_{n<=M} (2n+1) (r/a)^n P_n(u).
double inner_kernel(int truncation, double a, const Vec3& s, const Vec3& x_rel);

/// Gradient (w.r.t. x) of inner_kernel — used for forces in L2P.
Vec3 inner_kernel_gradient(int truncation, double a, const Vec3& s,
                           const Vec3& x_rel);

/// Evaluates an outer approximation (values g at the rule's points on a
/// sphere of radius `a` centred at `center`) at point `x` outside.
double evaluate_outer(const quadrature::SphereRule& rule, int truncation,
                      double a, const Vec3& center, std::span<const double> g,
                      const Vec3& x);

/// Evaluates an inner approximation at `x` inside the sphere.
double evaluate_inner(const quadrature::SphereRule& rule, int truncation,
                      double a, const Vec3& center, std::span<const double> g,
                      const Vec3& x);

/// Gradient of an inner approximation at `x` (for L2P forces).
Vec3 evaluate_inner_gradient(const quadrature::SphereRule& rule,
                             int truncation, double a, const Vec3& center,
                             std::span<const double> g, const Vec3& x);

}  // namespace hfmm::anderson
