#pragma once
// service::PlanCache — a shared, thread-safe cache of the solver's
// immutable precomputed state (DESIGN.md Section 17):
//
//   * TranslationData — per quadrature/separation/supernode configuration,
//     depth-independent, shared by every plan built from it. Never evicted
//     (there are only a handful of rules in practice).
//   * FmmPlan — per (translation config, kernel, depth, hierarchy mode),
//     refcounted and LRU-evicted. Eviction while a solve is in flight is
//     safe: clients hold shared_ptr leases, so the plan outlives its cache
//     entry.
//
// A solitary FmmSolver keeps its private plan slot (no cache); solvers
// constructed with a shared PlanCache — every client the SolverService
// pools — resolve plans here instead of rebuilding per instance, so N
// clients of the same workload pay for one plan build.

#include <cstddef>
#include <cstdint>
#include <memory>

#include "hfmm/core/config.hpp"

namespace hfmm::core::internal {
struct FmmPlan;
struct TranslationData;
}  // namespace hfmm::core::internal

namespace hfmm::service {

struct PlanCacheStats {
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t plan_evictions = 0;    ///< capacity- or budget-driven
  std::uint64_t plan_expirations = 0;  ///< TTL-driven
  std::uint64_t trans_hits = 0;
  std::uint64_t trans_misses = 0;
};

/// Environment-backed defaults for the plan LRU's resource bounds:
/// HFMM_PLAN_CACHE_BUDGET (bytes of resident plan memory, 0 = unbounded —
/// the default) and HFMM_PLAN_CACHE_TTL_MS (idle-entry time to live in
/// milliseconds, 0 = never expires — the default). Read once on first use.
std::size_t default_plan_cache_budget();
std::size_t default_plan_cache_ttl_ms();

class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 16;

  /// `capacity` bounds the number of resident plans (LRU); translation
  /// data is kept unbounded (one entry per quadrature configuration).
  /// `budget_bytes` additionally bounds the summed FmmPlan::memory_bytes()
  /// of resident plans (0 = unbounded; the most recently used plan always
  /// stays even when it alone exceeds the budget), and `ttl_ms` expires
  /// plans idle longer than this (0 = never).
  explicit PlanCache(std::size_t capacity = kDefaultCapacity,
                     std::size_t budget_bytes = default_plan_cache_budget(),
                     std::size_t ttl_ms = default_plan_cache_ttl_ms());
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The translation machinery for `config`'s quadrature/separation/
  /// supernode choice; built on first use. `hit` (optional) reports
  /// whether it was served from cache.
  std::shared_ptr<const core::internal::TranslationData> translations(
      const core::FmmConfig& config, bool* hit = nullptr);

  /// The solve plan for (`config`, `depth`); built (and its translation
  /// data resolved) on a miss. `hit` reports cache service. Returned plans
  /// are immutable and safe to use after eviction.
  std::shared_ptr<const core::internal::FmmPlan> plan(
      const core::FmmConfig& config, int depth, bool* hit = nullptr);

  PlanCacheStats stats() const;
  std::size_t size() const;            ///< resident plan count
  std::size_t capacity() const;        ///< plan LRU capacity
  std::size_t budget_bytes() const;    ///< plan memory budget (0 = unbounded)
  std::size_t resident_bytes() const;  ///< summed resident plan weights

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hfmm::service
