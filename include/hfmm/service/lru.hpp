#pragma once
// service::LruCache — a small thread-safe LRU map shared by the solver
// service's plan cache (DESIGN.md Section 17) and the 2-D solver's shared
// translation plans. Values are shared_ptrs, so eviction never invalidates
// an entry a client still holds: the refcount keeps an evicted-but-in-
// flight value alive until its last user drops it.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace hfmm::service {

struct LruStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

template <typename Key, typename V, typename Hash = std::hash<Key>>
class LruCache {
 public:
  using Value = std::shared_ptr<V>;

  explicit LruCache(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns the cached value for `key`, building it with `factory()` on a
  /// miss. The factory runs under the lock: builds are rare and expensive
  /// (translation matrices), so serializing them is cheaper than letting
  /// two clients race the same build. Second element is true on a hit.
  template <typename Factory>
  std::pair<Value, bool> get_or_build(const Key& key, Factory&& factory) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      ++stats_.hits;
      return {it->second->second, true};
    }
    ++stats_.misses;
    Value v = factory();
    order_.emplace_front(key, v);
    map_[key] = order_.begin();
    if (map_.size() > capacity_) {
      auto last = std::prev(order_.end());
      map_.erase(last->first);
      order_.erase(last);
      ++stats_.evictions;
    }
    return {std::move(v), false};
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  std::size_t capacity() const { return capacity_; }
  LruStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    order_.clear();
  }

 private:
  using Entry = std::pair<Key, Value>;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map_;
  LruStats stats_;
};

/// FNV-1a style combiner for hand-rolled key hashes.
inline std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace hfmm::service
