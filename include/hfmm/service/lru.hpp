#pragma once
// service::LruCache — a small thread-safe LRU map shared by the solver
// service's plan cache (DESIGN.md Section 17) and the 2-D solver's shared
// translation plans. Values are shared_ptrs, so eviction never invalidates
// an entry a client still holds: the refcount keeps an evicted-but-in-
// flight value alive until its last user drops it.
//
// Beyond the entry-count capacity, a cache can carry
//   * a BYTE BUDGET: each entry is inserted with a weight (the value's heap
//     footprint); when the resident total exceeds the budget, least-
//     recently-used entries are evicted until it fits — but the most
//     recently used entry always stays, so a single over-budget value still
//     caches (evicting it would just rebuild it every call);
//   * a TTL: entries idle longer than the ttl are expired lazily — any
//     get_or_build first drops every entry whose deadline passed (counted
//     separately from capacity/budget evictions). A hit refreshes the
//     deadline.
// Both default off (0), preserving the original count-only behaviour.

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace hfmm::service {

struct LruStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;    ///< capacity- or budget-driven removals
  std::uint64_t expirations = 0;  ///< TTL-driven removals
};

template <typename Key, typename V, typename Hash = std::hash<Key>>
class LruCache {
 public:
  using Value = std::shared_ptr<V>;
  using Clock = std::chrono::steady_clock;

  /// `budget_bytes` caps the summed entry weights (0 = unbounded);
  /// `ttl` expires entries idle longer than this (zero = never).
  explicit LruCache(
      std::size_t capacity, std::size_t budget_bytes = 0,
      std::chrono::milliseconds ttl = std::chrono::milliseconds{0})
      : capacity_(capacity == 0 ? 1 : capacity),
        budget_(budget_bytes),
        ttl_(ttl) {}

  /// Returns the cached value for `key`, building it with `factory()` on a
  /// miss. The factory runs under the lock: builds are rare and expensive
  /// (translation matrices), so serializing them is cheaper than letting
  /// two clients race the same build. Second element is true on a hit.
  /// `weigher(value)` prices the entry against the byte budget.
  template <typename Factory, typename Weigher>
  std::pair<Value, bool> get_or_build(const Key& key, Factory&& factory,
                                      Weigher&& weigher) {
    std::lock_guard<std::mutex> lock(mu_);
    const Clock::time_point now = Clock::now();
    purge_expired(now);
    auto it = map_.find(key);
    if (it != map_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      it->second->deadline = deadline_after(now);
      ++stats_.hits;
      return {it->second->value, true};
    }
    ++stats_.misses;
    Value v = factory();
    const std::size_t weight = weigher(*v);
    order_.push_front(Entry{key, v, weight, deadline_after(now)});
    map_[key] = order_.begin();
    resident_bytes_ += weight;
    while (map_.size() > capacity_ ||
           (budget_ != 0 && resident_bytes_ > budget_ && map_.size() > 1)) {
      auto last = std::prev(order_.end());
      resident_bytes_ -= last->weight;
      map_.erase(last->key);
      order_.erase(last);
      ++stats_.evictions;
    }
    return {std::move(v), false};
  }

  template <typename Factory>
  std::pair<Value, bool> get_or_build(const Key& key, Factory&& factory) {
    return get_or_build(key, std::forward<Factory>(factory),
                        [](const V&) { return std::size_t{0}; });
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  std::size_t capacity() const { return capacity_; }
  std::size_t budget_bytes() const { return budget_; }
  std::chrono::milliseconds ttl() const { return ttl_; }
  /// Summed weights of the resident entries.
  std::size_t resident_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return resident_bytes_;
  }
  LruStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  /// Drops entries whose TTL deadline has passed (also done lazily by every
  /// get_or_build); exposed so idle caches can be trimmed explicitly.
  void purge() {
    std::lock_guard<std::mutex> lock(mu_);
    purge_expired(Clock::now());
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    order_.clear();
    resident_bytes_ = 0;
  }

 private:
  struct Entry {
    Key key;
    Value value;
    std::size_t weight = 0;
    Clock::time_point deadline;  ///< meaningful only when ttl_ > 0
  };

  Clock::time_point deadline_after(Clock::time_point now) const {
    return ttl_.count() > 0 ? now + ttl_ : Clock::time_point::max();
  }

  void purge_expired(Clock::time_point now) {
    if (ttl_.count() <= 0) return;
    // Scan from the LRU end: entries are deadline-ordered because every
    // touch both refreshes the deadline and moves the entry to the front.
    while (!order_.empty() && order_.back().deadline <= now) {
      resident_bytes_ -= order_.back().weight;
      map_.erase(order_.back().key);
      order_.pop_back();
      ++stats_.expirations;
    }
  }

  std::size_t capacity_;
  std::size_t budget_;
  std::chrono::milliseconds ttl_;
  mutable std::mutex mu_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map_;
  std::size_t resident_bytes_ = 0;
  LruStats stats_;
};

/// FNV-1a style combiner for hand-rolled key hashes.
inline std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace hfmm::service
