#pragma once
// service::SolverService — the multi-tenant solve front end (DESIGN.md
// Section 17). Many independent clients share one process: the service
// owns the shared PlanCache, a pool of per-configuration client solvers
// (each with its warm SolveWorkspace), and a request scheduler that admits
// a batch of independent solves as interleaved DAG nodes on the one
// phase-graph executor.
//
// Determinism contract: every pooled client runs in sequential execution
// mode on its private one-thread pool (the calling scheduler worker
// executes it inline — ThreadPool is not nestable). Sequential and
// threaded solo solves are already bitwise-identical (the fixed-chunk
// guarantee, DESIGN.md Section 12), so a solve admitted through the
// service returns bit-for-bit the answer a solitary FmmSolver would.
// Data-parallel requests are rejected: the simulated machine fans out onto
// the global pool itself and cannot be nested under the batch scheduler.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hfmm/core/solver.hpp"
#include "hfmm/service/plan_cache.hpp"
#include "hfmm/util/particles.hpp"

namespace hfmm::service {

struct ServiceConfig {
  /// Plan LRU capacity of the shared PlanCache.
  std::size_t plan_capacity = PlanCache::kDefaultCapacity;
};

/// One independent solve: a workload configuration plus its particles.
/// `config.mode` is forced to sequential on admission (see above);
/// everything else is honored verbatim.
struct SolveRequest {
  core::FmmConfig config;
  const ParticleSet* particles = nullptr;
};

/// A completed request: the solver's full result (per-phase PhaseStats in
/// result.breakdown) plus the service-side admission record.
struct SolveOutcome {
  core::FmmResult result;
  /// Seconds the request waited from batch start until its solve body was
  /// claimed by a scheduler worker.
  double queue_seconds = 0.0;
  /// Modeled admission cost (largest first — the batch claim order).
  double modeled_cost = 0.0;
  /// True when the request was served by a pooled client (warm workspace)
  /// rather than a freshly constructed one.
  bool client_reused = false;
};

struct ServiceStats {
  std::uint64_t solves = 0;    ///< requests completed
  std::uint64_t batches = 0;   ///< solve_batch calls
  std::uint64_t clients_created = 0;
  std::uint64_t clients_reused = 0;
  PlanCacheStats plan_cache;
};

/// Admission-ordering cost model: the modeled work of one solve (near-field
/// pair estimate plus translation volume at the depth depth_for() selects).
/// Unit-free; only the ordering matters.
double modeled_cost(const core::FmmConfig& config, std::size_t n);

class SolverService {
 public:
  explicit SolverService(ServiceConfig config = {});
  ~SolverService();
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Solves one request through the client pool (plan served by the shared
  /// cache; workspace warm when a pooled client with this configuration
  /// exists). Throws std::invalid_argument for data-parallel configs.
  SolveOutcome solve(const core::FmmConfig& config,
                     const ParticleSet& particles);

  /// Admits a batch of independent requests as one interleaved phase-graph
  /// run on the process-global pool: one serial DAG node per request, no
  /// cross edges, claim order = modeled cost descending (stable by request
  /// index). Outcomes are returned in REQUEST order. Each request's result
  /// is bitwise-identical to a solo solve of the same (config, particles).
  std::vector<SolveOutcome> solve_batch(std::span<const SolveRequest> requests);

  /// The shared plan cache (for stats or for constructing cache-aware
  /// solvers outside the service).
  const std::shared_ptr<PlanCache>& plan_cache() const;

  ServiceStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hfmm::service
