#pragma once
// KernelModel: the physics a solve evaluates, split from the orchestration
// that schedules it (DESIGN.md Section 16).
//
// The engine recognises two capability tiers:
//   - FAR-FIELD CAPABLE kernels admit the Anderson outer/inner sphere
//     approximations, so the full pipeline runs: P2M, upward/downward
//     translations, L2P, plus the U-list near field. Laplace 3-D (1/r with
//     optional Plummer softening) is the only member today.
//   - SHORT-RANGE kernels decay fast enough that everything beyond the
//     d-separation U-list is negligible by construction. They reuse the
//     tree build, the coordinate sort, the near-field plans, the phase
//     graph and incremental stepping, while the far-field stages are kept
//     in the DAG as empty nodes (zero boxes, zero pairs) so timelines and
//     breakdowns stay shape-compatible across kernels.
// Van der Waals (switched Lennard-Jones, CHARMM convention) is the first
// short-range kernel: per-atom-type Rmin/epsilon tables with combining
// rules, a cuton/cutoff switching window, and an optional minimum-image
// wrap for a periodic cubic box.

#include <cstddef>
#include <vector>

#include "hfmm/util/particles.hpp"

namespace hfmm::core {

enum class KernelType {
  kLaplace3d,    ///< 1/sqrt(r^2 + soft^2) — far-field capable
  kVanDerWaals,  ///< switched Lennard-Jones — short-range
};

const char* to_string(KernelType t);

/// Environment-backed defaults for KernelSpec: HFMM_KERNEL=laplace|vdw
/// (default laplace) selects the workload; HFMM_VDW_CUTON / HFMM_VDW_CUTOFF
/// (defaults 0.04 / 0.06, unit-box scale) set the switching window and
/// HFMM_VDW_PERIODIC=0|1 (default 0) the minimum-image wrap. Read once on
/// first use.
KernelType default_kernel_type();
double default_vdw_cuton();
double default_vdw_cutoff();
bool default_vdw_periodic();

/// The physics of one solve. Defaults come from the environment so
/// `HFMM_KERNEL=vdw ./bench_...` retargets a binary without code changes
/// (the single-type Rmin = 0.02, eps = 1 table below applies when the
/// caller does not provide one; particles without a type array are type 0).
struct KernelSpec {
  KernelType type = default_kernel_type();

  /// Plummer softening of the Laplace near field (absorbed here from the
  /// old FmmConfig::softening; that field still forwards). Laplace only.
  double softening = 0.0;

  /// Van der Waals dials (CHARMM convention): per-atom-type minimum-energy
  /// radii Rmin_i and well depths eps_i, combined per pair as
  /// Rmin_ij = (Rmin_i + Rmin_j)/2 and eps_ij = sqrt(eps_i eps_j). The
  /// energy switches smoothly to zero over vdw_cuton < r < vdw_cutoff.
  std::vector<double> vdw_rmin{0.02};
  std::vector<double> vdw_epsilon{1.0};
  double vdw_cuton = default_vdw_cuton();
  double vdw_cutoff = default_vdw_cutoff();

  /// Minimum-image wrap across a periodic cubic box. The period is
  /// vdw_box.max_side(); validate() requires the box to be a cube.
  bool vdw_periodic = default_vdw_periodic();

  /// Simulation box of a vdW solve. Unlike Laplace (whose root cube is
  /// derived from the particle bounds each solve), vdW pins the hierarchy
  /// root to the cube containing this box, so the leaf side — and with it
  /// the cutoff-coverage guarantee below — is a property of the spec, not
  /// of the positions. Particles must lie inside it.
  Box3 vdw_box{};

  /// Far-field capable kernels run the full Anderson chain; the rest run
  /// tree + near field only.
  bool far_field_capable() const { return type == KernelType::kLaplace3d; }

  /// Number of atom types in the vdW tables.
  std::size_t vdw_types() const { return vdw_rmin.size(); }

  /// Throws std::invalid_argument on inconsistent parameters. For vdW the
  /// cutoff must not exceed side/4 of the box: the U-list spans d = 2 leaf
  /// boxes per axis, so every pair within the cutoff is covered as long as
  /// the leaf side stays >= cutoff/2, which side/4 guarantees down to depth
  /// 3. Periodic solves additionally run at depth >= 3 (8 boxes per side),
  /// so the +/-2 wrapped neighbour offsets stay distinct modulo the grid
  /// and no box pair is evaluated both directly and through the wrap.
  void validate() const;
};

}  // namespace hfmm::core
