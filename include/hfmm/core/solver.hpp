#pragma once
// FmmSolver — the public entry point of the library.
//
// Runs the five-step generic hierarchical method of the paper (Section 2.2):
//   1. P2M: leaf outer approximations from particles,
//   2. upward pass (T1),
//   3. downward pass (T2 over interactive fields + T3 from parents),
//   4. L2P: far-field potential at the particles,
//   5. near field: direct evaluation over the d-separation neighborhood,
// with Anderson's sphere elements and the paper's data-parallel execution
// techniques. See FmmConfig for the execution/aggregation choices.
//
// Typical use:
//   FmmConfig cfg;                      // D = 5, K = 12 defaults
//   cfg.with_gradient = true;
//   FmmSolver solver(cfg);
//   FmmResult r = solver.solve(particles);
//   // r.phi[i], r.grad[i] in the ORIGINAL particle order.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hfmm/anderson/translations.hpp"
#include "hfmm/core/config.hpp"
#include "hfmm/exec/graph.hpp"
#include "hfmm/tree/hierarchy.hpp"
#include "hfmm/util/particles.hpp"
#include "hfmm/util/timer.hpp"

namespace hfmm::service {
class PlanCache;
}  // namespace hfmm::service

namespace hfmm::core {

/// Per-rank counters of a distributed solve (ExecutionMode::kDistributed,
/// DESIGN.md Section 18): measured fabric traffic, the local essential
/// tree the rank received, and the partition's modeled cost share.
struct DistRankStats {
  std::uint64_t bytes_sent = 0;   ///< payload bytes pushed to the fabric
  std::uint64_t bytes_recv = 0;   ///< payload bytes popped from the fabric
  std::uint64_t let_bodies = 0;   ///< ghost bodies received (near field)
  std::uint64_t let_cells = 0;    ///< far/local vectors received
  std::uint64_t cost = 0;         ///< partition cost-model share
  std::size_t owned_leaves = 0;   ///< active leaves owned
  std::size_t owned_bodies = 0;   ///< particles owned
};

struct FmmResult {
  std::vector<double> phi;   ///< potential per particle (original order)
  std::vector<Vec3> grad;    ///< field gradient (if config.with_gradient)
  PhaseBreakdown breakdown;  ///< per-phase time / flops / comm
  dp::CommStats comm;        ///< data-parallel mode communication counters
  int depth = 0;             ///< hierarchy depth used
  std::size_t k = 0;         ///< integration points per sphere
  /// The physics this solve evaluated (config.kernel.type). Short-range
  /// kernels keep the far-field phases in the breakdown/timeline as empty
  /// entries (zero boxes, zero pairs).
  KernelType kernel = KernelType::kLaplace3d;
  std::size_t leaf_boxes = 0;
  bool plan_reused = false;  ///< warm solve: no plan construction happened
  std::uint64_t workspace_allocs = 0;  ///< heap-growth events this solve
  /// True when the solve ran on the sparse active-box executor (forced by
  /// HierarchyMode::kSparse or selected by kAuto's occupancy cutoff).
  bool sparse = false;
  /// True when the solve ran on the adaptive leaf-front executor
  /// (HierarchyMode::kAdaptive, DESIGN.md Section 15).
  bool adaptive = false;
  /// The hierarchy mode the caller configured, verbatim.
  HierarchyMode hierarchy_requested = HierarchyMode::kAuto;
  /// The hierarchy mode actually in effect for this solve. Differs from
  /// hierarchy_requested exactly when the solver degraded the request —
  /// today that is kAdaptive -> kAuto for short-range kernels, which have
  /// no adaptive leaf-front executor (see FmmSolver ctor).
  HierarchyMode hierarchy_effective = HierarchyMode::kAuto;
  /// The ncrit the adaptive front was refined with (config.ncrit, or the
  /// cost-model selection when config.ncrit == 0). 0 on non-adaptive solves.
  int ncrit = 0;
  /// Leaves of the adaptive front (== leaf_boxes on adaptive solves).
  std::size_t front_leaves = 0;
  /// Total active boxes over all levels (== total dense boxes when dense).
  std::size_t active_boxes = 0;
  /// Per-level active-box fraction, level_occupancy[l] in (0, 1]; filled
  /// whenever the active sets were derived (sparse solves, and DP solves
  /// with hierarchy != kDense).
  std::vector<double> level_occupancy;
  /// Heap footprint (capacity) of the solve workspace after this solve.
  std::size_t workspace_bytes = 0;
  /// Per-stage execution timeline of the solve's phase graph (start/end
  /// seconds relative to the graph run, chunk split, worker count) — shows
  /// which stages overlapped in concurrent mode.
  std::vector<exec::StageTiming> timeline;
  /// Distributed execution (ExecutionMode::kDistributed): effective rank
  /// count (0 otherwise), the partition's (max / mean) cost-model rank
  /// imbalance, the LET plan's modeled exchange bytes (which the measured
  /// fabric traffic must match exactly — the pack loops realize the model),
  /// and per-rank counters.
  int dist_ranks = 0;
  double dist_cost_imbalance = 0.0;
  std::uint64_t dist_modeled_bytes = 0;
  std::vector<DistRankStats> dist;
};

/// Borrowed, SORTED-order view of a solve's per-particle outputs — the
/// streamed accumulation path for timestep loops. `phi[i]` / `grad[i]`
/// belong to the particle with original index `perm[i]`; `q[i]` is its
/// charge. The spans alias the solver's workspace: they stay valid until
/// the next solve() on the same solver and must not be written. When a
/// solve fills a view, FmmResult::phi / ::grad are left EMPTY (no
/// original-order scatter, no per-step result allocation). Data-parallel
/// mode does not stream; the view comes back empty (valid() == false) and
/// the result vectors are filled as usual.
struct SolveView {
  std::span<const double> phi;
  std::span<const Vec3> grad;  ///< empty unless config.with_gradient
  std::span<const std::uint32_t> perm;  ///< sorted index -> original index
  std::span<const double> q;            ///< charges in sorted order
  bool valid() const { return !phi.empty(); }
};

/// Depth the solver will use for `n` particles under `config` — the
/// automatic-depth rule (Section 2.3 occupancy balance, the adaptive
/// refinement cap, and the short-range cutoff-coverage cap), or the
/// explicit config.depth. Free function so the service's admission cost
/// model can price a request without instantiating a solver.
int depth_for(const FmmConfig& config, std::size_t n);

class FmmSolver {
 public:
  explicit FmmSolver(FmmConfig config);
  /// Service-client form: plans and translation data resolve through the
  /// shared `cache` instead of being built per solver, so N clients of the
  /// same workload pay for one plan build (DESIGN.md Section 17). A null
  /// cache behaves exactly like the single-argument constructor.
  FmmSolver(FmmConfig config, std::shared_ptr<service::PlanCache> cache);
  ~FmmSolver();
  FmmSolver(const FmmSolver&) = delete;
  FmmSolver& operator=(const FmmSolver&) = delete;

  /// Computes the potential (and optionally gradient) induced at every
  /// particle by all the others.
  FmmResult solve(const ParticleSet& particles);

  /// Streamed variant: leaves the outputs in sorted order behind `view`
  /// instead of scattering them into FmmResult (see SolveView). Everything
  /// else about the solve — phases, counters, determinism — is identical.
  FmmResult solve(const ParticleSet& particles, SolveView& view);

  const FmmConfig& config() const { return config_; }

  /// The hierarchy mode the caller asked for, before any degradation;
  /// config().hierarchy is the mode in effect (see
  /// FmmResult::hierarchy_effective).
  HierarchyMode hierarchy_requested() const { return hierarchy_requested_; }

  /// The precomputed translation matrices (shared across solve() calls);
  /// built lazily on first use.
  const anderson::TranslationSet& translations();

  /// Depth that will be used for `n` particles under this configuration.
  int depth_for(std::size_t n) const;

  /// True when a solve for `n` particles would reuse the cached plan (i.e.
  /// a previous solve already built the plan for depth_for(n)).
  bool plan_ready(std::size_t n) const;

  /// Internal state (precomputed matrices); defined in solver_internal.hpp.
  struct Impl;

 private:
  FmmResult solve_impl_(const ParticleSet& particles, SolveView* view);
  FmmResult solve_dp_(const ParticleSet& particles,
                      const tree::Hierarchy& hier, FmmResult result);
  FmmResult solve_sparse_(const ParticleSet& particles,
                          const tree::Hierarchy& hier, FmmResult result,
                          SolveView* view, bool sort_repaired);
  FmmResult solve_adaptive_(const ParticleSet& particles,
                            const tree::Hierarchy& hier, FmmResult result,
                            SolveView* view, bool sort_repaired);
  FmmResult solve_dist_(const ParticleSet& particles,
                        const tree::Hierarchy& hier, FmmResult result,
                        SolveView* view, bool sort_repaired);
  FmmConfig config_;
  HierarchyMode hierarchy_requested_ = HierarchyMode::kAuto;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hfmm::core
