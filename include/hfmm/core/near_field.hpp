#pragma once
// Near-field direct evaluation (paper Section 3.4, Figure 10).
//
// Each leaf box interacts with the (2d+1)^3 - 1 neighbors of its
// d-separation near field plus its own particles. The symmetric variant
// exploits Newton's third law at box granularity: a half-list H with
// H u -H = all neighbors lets every box PAIR be evaluated once, writing
// both directions — 62 instead of 124 box-box interactions for d = 2.
//
// The pairwise arithmetic runs on the dispatched pkern backend (see
// hfmm/pkern/kernels.hpp); baseline::direct_ranges remains the scalar
// reference the tests compare against.
//
// Two entry levels:
//   * near_field() — the orchestrator: chunks the leaf boxes over the pool,
//     runs near_field_chunk() per chunk, reduces with
//     near_field_accumulate(). Interaction lists come precomputed from the
//     caller (the solver's FmmPlan), so repeated solves rebuild nothing.
//   * near_field_chunk() / near_field_accumulate() — the chunk-level worker
//     and reduction the hfmm::exec phase graph drives directly, so the near
//     field can run concurrently with the far-field stages and meet them at
//     the accumulate stage. Chunks write only their own scratch buffers and
//     the reduction adds chunks in index order (== ascending box ranges),
//     which keeps threaded solves bitwise-reproducible.

#include <cstdint>
#include <span>
#include <vector>

#include "hfmm/core/kernel_model.hpp"
#include "hfmm/dp/sort.hpp"
#include "hfmm/pkern/kernels.hpp"
#include "hfmm/tree/hierarchy.hpp"
#include "hfmm/tree/interaction_lists.hpp"
#include "hfmm/util/thread_pool.hpp"

namespace hfmm::core {

struct NearFieldResult {
  std::uint64_t flops = 0;
  std::uint64_t pair_interactions = 0;  ///< particle pairs evaluated
  std::uint64_t box_interactions = 0;   ///< box-box interactions evaluated
};

/// Physics of the near-field pair loop, resolved by the solver from its
/// KernelSpec. Implicitly convertible from a softening length so
/// pre-KernelModel call sites passing `cfg.softening` compile unchanged
/// and run the identical Laplace arithmetic. For van der Waals the solver
/// fills the precomputed pair tables / switching constants and the
/// per-particle type array (SORTED order, aligned with boxed.sorted); a
/// period > 0 in `vdw` additionally wraps box neighbours and pair
/// displacements to the minimum image of the periodic cube.
struct NearKernel {
  KernelType type = KernelType::kLaplace3d;
  double soft2 = 0.0;                  ///< Laplace: softening^2
  const std::int32_t* types = nullptr; ///< vdW: sorted per-particle types
  pkern::VdwParams vdw{};              ///< vdW: tables + derived constants
  NearKernel() = default;
  NearKernel(double softening) : soft2(softening * softening) {}  // implicit
};

/// Reusable workspace for near_field(). The per-chunk accumulation buffers
/// are O(chunks x N); owning them at the caller means an integrator
/// stepping the same system pays the allocation once, not every step.
/// Buffers grow on demand and are reset (not shrunk) per call.
struct NearFieldScratch {
  struct Chunk {
    std::vector<double> phi;        ///< chunk-local potential, size N
    std::vector<Vec3> grad;         ///< chunk-local gradient, size N
    std::vector<double> pair_phi;   ///< symmetric pair buffer (targets+sources)
    std::vector<double> pair_gx, pair_gy, pair_gz;  ///< SoA pair gradients
    std::size_t lo = 0;             ///< first box of the chunk's range
  };
  std::vector<Chunk> chunks;
};

/// Evaluates leaf boxes [box_lo, box_hi) into `ch`'s chunk-local buffers
/// (resized and zeroed here). `offsets` is the precomputed interaction list —
/// tree::near_field_half_offsets(d) when `symmetric`, else
/// tree::near_field_offsets(d). Writes nothing outside `ch`; safe to run
/// concurrently with other chunks and with the far-field stages. The
/// returned flop count is analytic (pairs x per-pair kernel cost).
NearFieldResult near_field_chunk(const tree::Hierarchy& hier,
                                 const dp::BoxedParticles& boxed,
                                 std::span<const tree::Offset> offsets,
                                 bool symmetric, bool with_gradient,
                                 NearFieldScratch::Chunk& ch,
                                 std::size_t box_lo, std::size_t box_hi,
                                 const NearKernel& kern = NearKernel{});

/// Active-box variant: evaluates the leaf boxes whose flat indices are
/// listed in `boxes` (a slice of a sparse active set, ascending). Pair
/// coverage matches the dense range form exactly — boxes absent from an
/// active set are empty, and box pairs with an empty side are skipped by
/// both forms — so the two produce identical interactions.
NearFieldResult near_field_chunk(const tree::Hierarchy& hier,
                                 const dp::BoxedParticles& boxed,
                                 std::span<const tree::Offset> offsets,
                                 bool symmetric, bool with_gradient,
                                 NearFieldScratch::Chunk& ch,
                                 std::span<const std::uint32_t> boxes,
                                 const NearKernel& kern = NearKernel{});

/// Run/pair plan of an adaptive leaf front (DESIGN.md Section 15), borrowed
/// from the solve workspace. Leaves follow the front's canonical (level,
/// flat) enumeration. `run_begin` is a CSR over leaves into `run_bounds`,
/// which holds one [particle_lo, particle_hi) pair per run — the contiguous
/// sorted-order ranges covering the leaf's subtree. `pair_begin` is a CSR
/// over leaves into `pair_leaf`, the U-list partner leaf ids OWNED by each
/// leaf (each unordered leaf adjacency appears under exactly one owner).
struct AdaptiveLeafPlan {
  std::span<const std::uint32_t> run_begin;
  std::span<const std::uint32_t> run_bounds;
  std::span<const std::uint32_t> pair_begin;
  std::span<const std::uint32_t> pair_leaf;
};

/// Adaptive-front chunk: evaluates front leaves [leaf_lo, leaf_hi) — every
/// intra-leaf pair (per-run self interactions plus run-run crosses) and
/// every owned U-list adjacency, all through the symmetric pair buffer so
/// both directions land in `ch` at once. Pair accounting matches the
/// uniform-leaf chunk: intra-leaf pairs are counted ordered (t*(t-1)),
/// cross-leaf adjacencies once per unordered pair. The evaluation order is
/// fixed (leaves ascending, runs ascending, partners in pair_leaf order),
/// so results are bitwise-reproducible for any chunk split.
NearFieldResult near_field_adaptive_chunk(const dp::BoxedParticles& boxed,
                                          const AdaptiveLeafPlan& plan,
                                          bool with_gradient,
                                          NearFieldScratch::Chunk& ch,
                                          std::size_t leaf_lo,
                                          std::size_t leaf_hi,
                                          double softening = 0.0);

/// Adds chunks [0, used) of `scr` into phi/grad over the particle range
/// [lo, hi), in chunk-index order. Chunk index == ascending box range when
/// the chunks came from a static split, so the floating-point accumulation
/// order is fixed regardless of which thread ran which chunk.
void near_field_accumulate(const NearFieldScratch& scr, std::size_t used,
                           bool with_gradient, std::span<double> phi,
                           std::span<Vec3> grad, std::size_t lo,
                           std::size_t hi);

/// Accumulates near-field potential (and gradient if `grad` nonempty) into
/// phi/grad, both indexed in SORTED particle order (boxed.sorted).
/// `scratch` (when non-null) is reused across calls; pass null for one-shot
/// use. `kern` selects the pairwise physics — a bare softening length still
/// converts to the Laplace kernel (far-field contributions are unsoftened,
/// which is the standard treecode convention when the softening length is
/// well below the leaf box side).
NearFieldResult near_field(const tree::Hierarchy& hier,
                           const dp::BoxedParticles& boxed,
                           std::span<const tree::Offset> offsets,
                           bool symmetric, std::span<double> phi,
                           std::span<Vec3> grad, ThreadPool& pool,
                           NearFieldScratch* scratch = nullptr,
                           const NearKernel& kern = NearKernel{});

}  // namespace hfmm::core
