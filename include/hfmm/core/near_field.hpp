#pragma once
// Near-field direct evaluation (paper Section 3.4, Figure 10).
//
// Each leaf box interacts with the (2d+1)^3 - 1 neighbors of its
// d-separation near field plus its own particles. The symmetric variant
// exploits Newton's third law at box granularity: a half-list H with
// H u -H = all neighbors lets every box PAIR be evaluated once, writing
// both directions — 62 instead of 124 box-box interactions for d = 2.
//
// The pairwise arithmetic runs on the dispatched pkern backend (see
// hfmm/pkern/kernels.hpp); baseline::direct_ranges remains the scalar
// reference the tests compare against.

#include <cstdint>
#include <span>
#include <vector>

#include "hfmm/dp/sort.hpp"
#include "hfmm/tree/hierarchy.hpp"
#include "hfmm/tree/interaction_lists.hpp"
#include "hfmm/util/thread_pool.hpp"

namespace hfmm::core {

struct NearFieldResult {
  std::uint64_t flops = 0;
  std::uint64_t pair_interactions = 0;  ///< particle pairs evaluated
  std::uint64_t box_interactions = 0;   ///< box-box interactions evaluated
};

/// Reusable workspace for near_field(). The per-chunk accumulation buffers
/// are O(threads x N); owning them at the caller means an integrator
/// stepping the same system pays the allocation once, not every step.
/// Buffers grow on demand and are reset (not shrunk) per call.
struct NearFieldScratch {
  struct Chunk {
    std::vector<double> phi;        ///< chunk-local potential, size N
    std::vector<Vec3> grad;         ///< chunk-local gradient, size N
    std::vector<double> pair_phi;   ///< symmetric pair buffer (targets+sources)
    std::vector<double> pair_gx, pair_gy, pair_gz;  ///< SoA pair gradients
    std::size_t lo = 0;             ///< first box of the chunk's range
  };
  std::vector<Chunk> chunks;
};

/// Accumulates near-field potential (and gradient if `grad` nonempty) into
/// phi/grad, both indexed in SORTED particle order (boxed.sorted).
/// `scratch` (when non-null) is reused across calls; pass null for one-shot
/// use. `softening` is the Plummer softening length applied to the pairwise
/// kernel (far-field contributions are unsoftened, which is the standard
/// treecode convention when the softening length is well below the leaf box
/// side). This overload rebuilds the interaction list per call.
NearFieldResult near_field(const tree::Hierarchy& hier,
                           const dp::BoxedParticles& boxed, int separation,
                           bool symmetric, std::span<double> phi,
                           std::span<Vec3> grad, ThreadPool& pool,
                           NearFieldScratch* scratch = nullptr,
                           double softening = 0.0);

/// Plan-driven overload: `offsets` is the precomputed interaction list —
/// tree::near_field_half_offsets(d) when `symmetric`, else
/// tree::near_field_offsets(d) — owned by the caller (the solver's FmmPlan),
/// so repeated solves rebuild nothing.
NearFieldResult near_field(const tree::Hierarchy& hier,
                           const dp::BoxedParticles& boxed,
                           std::span<const tree::Offset> offsets,
                           bool symmetric, std::span<double> phi,
                           std::span<Vec3> grad, ThreadPool& pool,
                           NearFieldScratch* scratch = nullptr,
                           double softening = 0.0);

}  // namespace hfmm::core
