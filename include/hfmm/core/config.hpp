#pragma once
// Configuration of the full O(N) solver.

#include "hfmm/anderson/params.hpp"
#include "hfmm/core/kernel_model.hpp"
#include "hfmm/dp/halo.hpp"
#include "hfmm/dp/machine.hpp"
#include "hfmm/dp/multigrid.hpp"

namespace hfmm::core {

/// How the identical algorithm is executed (DESIGN.md Section 6).
enum class ExecutionMode {
  kSequential,    ///< single thread — the oracle
  kThreads,       ///< shared-memory parallel over boxes
  kDataParallel,  ///< simulated CM-style VU machine with counted comm
  kDistributed,   ///< owner-computes in-process ranks with LET exchange (§18)
};

/// Leaf-run weighting of the distributed partitioner (DESIGN.md §18).
enum class DistPartitioner {
  kCost,    ///< cost-model split: near-field pairs + bodies per leaf
  kBodies,  ///< equal-bodies split (ORB-flavoured, along the same curve)
};

/// How translations are applied (paper Section 3.3.3):
enum class AggregationMode {
  kGemv,       ///< one matrix-vector product per box (BLAS-2)
  kGemm,       ///< boxes aggregated into matrix-matrix products (BLAS-3)
  kGemmBatch,  ///< multiple-instance GEMM over subgrid slabs (CMSSL style)
};

/// How the box hierarchy is enumerated (DESIGN.md Sections 13 and 15):
enum class HierarchyMode {
  kDense,     ///< dense 8^l arrays per level (the classic layout)
  kSparse,    ///< active-box level sets derived from leaf occupancy
  kAuto,      ///< sparse when leaf occupancy < sparse_threshold, else dense
  kAdaptive,  ///< per-box ncrit refinement: non-uniform leaf front (§15)
};

const char* to_string(ExecutionMode m);
const char* to_string(AggregationMode m);
const char* to_string(HierarchyMode m);
const char* to_string(DistPartitioner m);

/// Environment-backed defaults for FmmConfig's incremental-stepping knobs:
/// HFMM_STEP_INCREMENTAL=0|1 (default 0) and HFMM_STEP_MOVER_THRESHOLD
/// (default 0.10). Read once on first use.
bool default_step_incremental();
double default_step_mover_threshold();

/// Environment-backed defaults for the adaptive hierarchy (DESIGN.md §15):
/// HFMM_HIERARCHY=dense|sparse|auto|adaptive (default auto), HFMM_NCRIT
/// (default 0 = cost-model selection) and HFMM_ADAPTIVE_MAX_DEPTH
/// (default 7, the cap on the refinement front). Read once on first use.
HierarchyMode default_hierarchy_mode();
int default_ncrit();
int default_adaptive_max_depth();

/// Environment-backed defaults for the distributed executor (DESIGN.md §18):
/// HFMM_DIST_RANKS (default 4, in [1, 64]) and
/// HFMM_DIST_PARTITIONER=cost|bodies (default cost). Read once on first use.
int default_dist_ranks();
DistPartitioner default_dist_partitioner();

struct FmmConfig {
  anderson::Params params = anderson::params_d5_k12();
  int depth = -1;                    ///< hierarchy depth; -1 = automatic
  /// Occupancy target for the automatic depth rule (Section 2.3: leaf count
  /// proportional to N). 0 = derive from K: traversal work per box grows as
  /// K^2 while near-field work grows as occupancy^2, so the balancing
  /// occupancy scales with K (and drops when supernodes cut traversal 4.6x).
  double particles_per_leaf = 0.0;
  int separation = 2;                ///< d-separation near field (paper: 2)
  bool supernodes = false;           ///< Section 2.3 supernode optimization
  bool near_symmetry = true;         ///< Newton-3rd-law near field (Fig. 10)
  bool with_gradient = false;        ///< also compute field gradients
  /// The physics this solve evaluates (DESIGN.md §16): Laplace 3-D runs the
  /// full Anderson far-field chain, short-range kernels (van der Waals)
  /// reuse the tree/near-field machinery with the far phases as empty DAG
  /// nodes. Env default HFMM_KERNEL=laplace|vdw.
  KernelSpec kernel{};
  /// DEPRECATED alias for kernel.softening (the Laplace Plummer softening
  /// now lives on the KernelSpec). A non-zero value here is forwarded to
  /// kernel.softening by FmmSolver when the spec leaves it at 0, so
  /// pre-KernelModel call sites behave unchanged.
  double softening = 0.0;
  ExecutionMode mode = ExecutionMode::kThreads;
  AggregationMode aggregation = AggregationMode::kGemm;
  /// Sparse active-box hierarchy selection. kAuto measures the leaf-level
  /// occupancy after the coordinate sort and switches to the sparse
  /// executor only when it falls below sparse_threshold — dense (near-)
  /// uniform inputs keep the dense path and its exact bit patterns.
  /// kAdaptive (opt-in, env HFMM_HIERARCHY=adaptive) replaces the single
  /// global leaf level with a per-box ncrit-refined leaf front (DESIGN.md
  /// §15); in data-parallel mode it degrades to the kAuto behaviour.
  HierarchyMode hierarchy = default_hierarchy_mode();
  /// kAuto's occupancy cutoff: fraction of non-empty leaf boxes below which
  /// the sparse path is selected. In [0, 1]; 0 forces dense under kAuto.
  double sparse_threshold = 0.9;
  /// kAdaptive leaf-split threshold: a box splits while it holds more than
  /// ncrit bodies (up to the refinement depth cap). 0 = pick the value per
  /// solve by minimizing the modeled cost (near-field pair count plus
  /// translation count — tree::select_ncrit). Env override HFMM_NCRIT.
  int ncrit = default_ncrit();
  /// Depth cap for the adaptive refinement front when `depth` is -1 (an
  /// explicit depth overrides it). Env override HFMM_ADAPTIVE_MAX_DEPTH.
  int adaptive_max_depth = default_adaptive_max_depth();
  /// Incremental dynamic stepping (DESIGN.md Section 14): pin the hierarchy
  /// root cube across solves and, while the particle count / depth / cube
  /// stay valid, diff each solve's leaf assignment against the previous one
  /// — repairing the sorted order in place and revalidating the sparse
  /// active sets / cost model instead of rebuilding them. Results stay
  /// bit-identical to a full rebuild ON THE SAME (pinned) cube; they are
  /// NOT bitwise-comparable to a cold solve that derives a tight cube from
  /// the moved positions, so the feature is opt-in (default off; env
  /// override HFMM_STEP_INCREMENTAL=0|1). Ignored in data-parallel mode.
  bool step_incremental = default_step_incremental();
  /// Mover fraction above which an incremental step falls back to the full
  /// counting sort. In [0, 1]; env override HFMM_STEP_MOVER_THRESHOLD.
  double step_mover_threshold = default_step_mover_threshold();

  // Data-parallel execution knobs (ignored in the other modes).
  dp::MachineConfig machine{2, 2, 2};
  dp::HaloStrategy halo = dp::HaloStrategy::kGhostSections;
  dp::EmbedMethod embed = dp::EmbedMethod::kLocalCopy;

  // Distributed execution knobs (ExecutionMode::kDistributed, DESIGN.md
  // §18; ignored in the other modes). `dist_ranks` is the REQUESTED rank
  // count — the effective count is clamped so every rank owns at least one
  // active leaf, and FmmResult::dist_ranks reports what actually ran.
  int dist_ranks = default_dist_ranks();
  DistPartitioner dist_partitioner = default_dist_partitioner();

  void validate() const;
};

}  // namespace hfmm::core
