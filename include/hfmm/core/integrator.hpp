#pragma once
// Leapfrog (kick-drift-kick) time integration driven by the O(N) solver —
// the dynamics loop of the N-body simulations the paper's introduction
// motivates (celestial mechanics, plasma physics, molecular dynamics).
//
// Convention: charges are masses/charges q; the solver returns
// phi_i = sum q_j / r_ij and its gradient. The equation of motion is
//   a_i = sign * (q_i / m_i) * grad phi_i
// with unit masses (m_i = |q_i|) assumed here:
//   gravity  (all q > 0):  a = +grad phi  (attractive), sign = +1
//   plasma   (mixed q):    a = -(q_i/|q_i|) grad phi    (like repels like)

#include <functional>
#include <vector>

#include "hfmm/core/solver.hpp"
#include "hfmm/util/particles.hpp"

namespace hfmm::core {

enum class ForceLaw {
  kGravity,        ///< a = +grad phi; charges are masses (> 0)
  kElectrostatic,  ///< a = -sign(q) grad phi; unit masses
};

struct SimulationState {
  ParticleSet particles;
  std::vector<Vec3> velocity;
  std::vector<double> phi;  ///< potential from the last force evaluation
  double time = 0.0;
  std::uint64_t steps = 0;
};

struct EnergyReport {
  double kinetic = 0.0;
  double potential = 0.0;  ///< sign-correct: -1/2 sum q phi for gravity
  double total() const { return kinetic + potential; }
  Vec3 momentum;
};

/// Accumulated force-evaluation statistics over the integrator's lifetime.
/// After the first evaluation builds the solver's plan, every later step is
/// a warm solve (plan reused, ~zero workspace growth) — the per-step cost
/// the paper's timestep loops care about.
struct ForceStats {
  std::uint64_t evaluations = 0;       ///< solver_.solve() calls issued
  std::uint64_t warm_evaluations = 0;  ///< of those, plan-reusing (warm)
  std::uint64_t workspace_allocs = 0;  ///< summed heap-growth events
  /// Evaluations that consumed the solver's sorted-order SolveView instead
  /// of FmmResult vectors (every non-DP evaluation).
  std::uint64_t streamed_evaluations = 0;
  /// Per-step result-vector allocations avoided by streaming (phi + grad
  /// assigns skipped per streamed evaluation).
  std::uint64_t saved_result_allocs = 0;
  double seconds = 0.0;                ///< summed solve wall time
};

class LeapfrogIntegrator {
 public:
  /// The solver must be configured with with_gradient = true.
  LeapfrogIntegrator(FmmSolver& solver, ForceLaw law, double dt);

  /// Initializes internal forces; call once before step().
  void initialize(SimulationState& state);

  /// Advances one kick-drift-kick step (second order, symplectic).
  void step(SimulationState& state);

  /// Advances `n` steps, invoking `on_step(state)` after each (if set).
  void run(SimulationState& state, std::uint64_t n,
           const std::function<void(const SimulationState&)>& on_step = {});

  EnergyReport energy(const SimulationState& state) const;

  const ForceStats& force_stats() const { return force_stats_; }

  /// Phase breakdown of the most recent force evaluation (sort seconds,
  /// movers, plan_reuse, chunks_rebuilt, ...) — what the dynamics benches
  /// report per step. Empty before initialize().
  const PhaseBreakdown& last_breakdown() const { return last_breakdown_; }

 private:
  void evaluate_forces(SimulationState& state);

  FmmSolver& solver_;
  ForceLaw law_;
  double dt_;
  /// a_i in ORIGINAL particle order, precomputed per evaluation with the
  /// ForceLaw branch applied once (not once per particle per kick).
  std::vector<Vec3> accel_;
  ForceStats force_stats_;
  PhaseBreakdown last_breakdown_;
};

}  // namespace hfmm::core
