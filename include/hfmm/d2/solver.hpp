#pragma once
// The 2-D O(N) solver — Anderson's method on a quadtree with circle
// elements. The paper (Section 2.4) stresses that "a code for three
// dimensions is easily obtained from a code for two dimensions, or vice
// versa"; this solver is that sibling code: the same five-step pipeline and
// translation-matrix structure, with (K+1)-augmented vectors carrying the
// 2-D logarithmic monopole (see kernels.hpp).
//
// Execution: sequential or shared-memory threads (the data-parallel
// machine simulation is exercised by the 3-D solver; the communication
// structure is dimension-independent).

#include <cstdint>
#include <vector>

#include "hfmm/d2/tree.hpp"
#include "hfmm/exec/graph.hpp"
#include "hfmm/util/thread_pool.hpp"
#include "hfmm/util/timer.hpp"

namespace hfmm::d2 {

/// A 2-D particle system: positions and charges (structure-of-arrays).
struct ParticleSet2 {
  std::vector<double> x, y, q;

  std::size_t size() const { return x.size(); }
  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    q.resize(n);
  }
  Point2 position(std::size_t i) const { return {x[i], y[i]}; }
};

/// N particles uniform in [0,1]^2 with unit charges.
ParticleSet2 make_uniform2(std::size_t n, std::uint64_t seed, double qlo = 1.0,
                           double qhi = 1.0);
/// Overall-neutral 2-D plasma (alternating +-1 charges).
ParticleSet2 make_plasma2(std::size_t n, std::uint64_t seed);

struct Fmm2Config {
  std::size_t k = 16;        ///< circle points; exact to degree K-1
  int truncation = 7;        ///< M <= (K-1)/2 to stay inside the exactness
  double radius_ratio = 1.3; ///< circle radius / box side
  int depth = -1;            ///< -1 = automatic occupancy rule
  double particles_per_leaf = 0.0;  ///< 0 = derive from K
  int separation = 2;
  bool supernodes = false;
  bool with_gradient = false;
  bool threads = true;

  void validate() const;
};

struct Fmm2Result {
  std::vector<double> phi;   ///< sum_j q_j log(1/r_ij), original order
  std::vector<Point2> grad;  ///< gradient of phi (if requested)
  PhaseBreakdown breakdown;
  /// Per-stage wall intervals of the solve's phase graph (insertion order).
  std::vector<exec::StageTiming> timeline;
  int depth = 0;
};

class FmmSolver2 {
 public:
  explicit FmmSolver2(Fmm2Config config);
  ~FmmSolver2();
  FmmSolver2(const FmmSolver2&) = delete;
  FmmSolver2& operator=(const FmmSolver2&) = delete;

  Fmm2Result solve(const ParticleSet2& particles);
  const Fmm2Config& config() const { return config_; }
  int depth_for(std::size_t n) const;

 private:
  struct Impl;
  Fmm2Config config_;
  std::unique_ptr<Impl> impl_;
};

/// Direct O(N^2) 2-D summation (ground truth): phi_i = sum q_j log(1/r_ij).
struct Direct2Result {
  std::vector<double> phi;
  std::vector<Point2> grad;
};
Direct2Result direct_all2(const ParticleSet2& particles, bool with_gradient);

}  // namespace hfmm::d2
