#pragma once
// The 2-D Poisson-formula computational elements.
//
// Potential convention: phi(x) = sum_j q_j log(1/|x - x_j|). A cluster with
// total charge Q inside a circle of radius a has, outside the circle,
//   u(r,theta) = Q log(a/r)
//              + (1/2pi) Int g(phi) [1 + 2 sum_{n=1}^{M} (a/r)^n
//                                        cos n(theta - phi)] dphi
// where g are the boundary values of the potential on the circle (their
// mean already contains Q log(1/a), so the far field reduces to Q log(1/r)).
// Interior fields use the same series with (r/a)^n and no log term.
//
// An OUTER element is therefore (g_0..g_{K-1}, Q): the K sampled boundary
// values PLUS the explicit monopole — the price of the logarithm in 2-D.
// An INNER element is just (g_0..g_{K-1}). Translations are linear in the
// augmented (K+1)-vector [g, Q], so the whole 3-D matrix machinery carries
// over with (K+1) x (K+1) matrices.

#include <span>

#include "hfmm/d2/circle_rule.hpp"

namespace hfmm::d2 {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point2 operator-(const Point2& a, const Point2& b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point2 operator+(const Point2& a, const Point2& b) {
    return {a.x + b.x, a.y + b.y};
  }
  double norm() const;
};

/// Truncated exterior kernel (without the log term):
/// 1 + 2 sum_{n<=M} (a/r)^n cos n(theta_x - theta_s).
double outer_series_kernel(int truncation, double a, double s_theta,
                           const Point2& x_rel);

/// Truncated interior kernel: 1 + 2 sum_{n<=M} (r/a)^n cos n(...).
double inner_series_kernel(int truncation, double a, double s_theta,
                           const Point2& x_rel);

/// Gradient of the interior kernel w.r.t. x (for forces in 2-D L2P).
Point2 inner_series_kernel_gradient(int truncation, double a, double s_theta,
                                    const Point2& x_rel);

/// Evaluates an outer element (g on circle (center, a), monopole Q) at x
/// outside: the log term plus the discretized series.
double evaluate_outer(const CircleRule& rule, int truncation, double a,
                      const Point2& center, std::span<const double> g,
                      double monopole, const Point2& x);

/// Evaluates an inner element at x inside the circle.
double evaluate_inner(const CircleRule& rule, int truncation, double a,
                      const Point2& center, std::span<const double> g,
                      const Point2& x);

/// Gradient of an inner element at x.
Point2 evaluate_inner_gradient(const CircleRule& rule, int truncation,
                               double a, const Point2& center,
                               std::span<const double> g, const Point2& x);

}  // namespace hfmm::d2
