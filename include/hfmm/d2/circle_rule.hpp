#pragma once
// Integration on the unit circle for the 2-D variant of Anderson's method
// (paper Section 2.4: the 2-D and 3-D methods differ only in their
// computational elements; this is the 2-D element's quadrature).
//
// K equally spaced points with equal weights 1/K integrate trigonometric
// polynomials of degree <= K-1 exactly — the circle analogue of the sphere
// rules, and already optimal (no McLaren-style search needed in 2-D).

#include <cstddef>
#include <vector>

namespace hfmm::d2 {

struct CirclePoint {
  double x = 1.0;
  double y = 0.0;
  double theta = 0.0;
};

struct CircleRule {
  std::vector<CirclePoint> points;
  double weight = 0.0;  ///< uniform: 1/K (weights sum to 1)
  int degree = 0;       ///< exact for trig polynomials of degree <= this

  std::size_t size() const { return points.size(); }
};

/// K equispaced points starting at angle 0; exact through degree K-1.
CircleRule circle_rule(std::size_t k);

}  // namespace hfmm::d2
