#pragma once
// Quadtree hierarchy and 2-D interaction lists (paper Figure 1 is drawn in
// two dimensions; these are its exact counts).
//
// With d-separation: near field (2d+1)^2 boxes; interactive field
// 3(2d+1)^2 per child (75 for d = 2, 27 for d = 1); sibling union
// (4d+3)^2 - (2d+1)^2 offsets; and the supernode decomposition reduces 75
// effective translations to 27 — the same 8x-to-~4x family of identities as
// in 3-D, verified by the tests.

#include <cstdint>
#include <vector>

#include "hfmm/d2/kernels.hpp"

namespace hfmm::d2 {

struct BoxCoord2 {
  std::int32_t ix = 0;
  std::int32_t iy = 0;

  friend constexpr bool operator==(const BoxCoord2&, const BoxCoord2&) =
      default;
};

struct Offset2 {
  std::int32_t dx = 0;
  std::int32_t dy = 0;

  friend constexpr bool operator==(const Offset2&, const Offset2&) = default;
  friend constexpr auto operator<=>(const Offset2&, const Offset2&) = default;
};

/// Square domain [lo, lo+side]^2 refined to `depth` levels of 4-way splits.
class Quadtree {
 public:
  Quadtree(const Point2& lo, double side, int depth);

  int depth() const { return depth_; }
  double side() const { return side_; }
  const Point2& lo() const { return lo_; }

  std::int32_t boxes_per_side(int level) const { return 1 << level; }
  std::size_t boxes_at(int level) const {
    return static_cast<std::size_t>(1) << (2 * level);
  }
  double side_at(int level) const { return side_ / boxes_per_side(level); }

  std::size_t flat_index(int level, const BoxCoord2& c) const;
  BoxCoord2 coord_of(int level, std::size_t flat) const;
  Point2 center(int level, const BoxCoord2& c) const;
  BoxCoord2 leaf_of(const Point2& p) const;
  bool in_bounds(int level, const BoxCoord2& c) const;

  static constexpr BoxCoord2 parent_of(const BoxCoord2& c) {
    return {c.ix >> 1, c.iy >> 1};
  }
  /// Quadrant index in [0, 4): bit 0 = x, bit 1 = y.
  static constexpr int quadrant_of(const BoxCoord2& c) {
    return (c.ix & 1) | ((c.iy & 1) << 1);
  }
  static constexpr BoxCoord2 child_of(const BoxCoord2& p, int q) {
    return {2 * p.ix + (q & 1), 2 * p.iy + ((q >> 1) & 1)};
  }
  /// Child-centre displacement from the parent centre in child-side units.
  static Point2 quadrant_offset(int q) {
    return {(q & 1) ? 0.5 : -0.5, (q & 2) ? 0.5 : -0.5};
  }

 private:
  Point2 lo_;
  double side_;
  int depth_;
};

std::vector<Offset2> near_offsets2(int separation);
std::vector<Offset2> near_half_offsets2(int separation);
std::vector<Offset2> interactive_offsets2(int quadrant, int separation);
std::vector<Offset2> sibling_union_offsets2(int separation);
std::size_t offset_square_index(const Offset2& o, int separation);
std::size_t offset_square_size(int separation);

struct SupernodeEntry2 {
  Offset2 offset;
  int source_level_up = 0;  ///< 0 = same level, 1 = parent level
};

/// Supernode interaction list (complete sibling quads replaced by their
/// parent): 16 parents + 11 children = 27 entries for d = 2.
std::vector<SupernodeEntry2> supernode_interactive2(int quadrant,
                                                    int separation);

/// The 2-D occupancy-based depth rule.
int optimal_depth2(std::size_t n_particles, double particles_per_leaf);

}  // namespace hfmm::d2
