#pragma once
// Sparse active-box level sets (paper Section 3.5).
//
// The dense hierarchy enumerates all 8^l boxes of every level, but on
// clustered distributions (Plummer, two-cluster) most of them are empty:
// their subtrees hold no particles, their far fields are exactly zero, and
// their local fields feed no particles. The coordinate sort already yields
// leaf occupancy, so the solver derives per-level ACTIVE sets instead:
//   * a leaf box is active iff it holds at least one particle;
//   * an internal box is active iff any of its children is active.
// Every translation phase then iterates active indices only, and the level
// stores shrink from 8^l * K to |active_l| * K values.
//
// Each level keeps the active boxes as an ascending list of flat indices
// (the reduction/iteration order, fixed so results stay reproducible) plus
// the inverse dense -> active map used for neighbor lookups and for the
// data-parallel multigrid embed/extract, which still addresses the dense
// grid geometry.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hfmm/tree/hierarchy.hpp"

namespace hfmm::tree {

/// Active boxes of one level.
struct LevelActiveSet {
  /// Flat indices of the active boxes, ascending. The position of a flat
  /// index in this list is the box's ACTIVE index — the row of its
  /// potential vectors in the compact level stores.
  std::vector<std::uint32_t> boxes;
  /// Dense flat index -> active index; -1 for inactive boxes. Size 8^l.
  std::vector<std::int32_t> dense_to_active;

  std::size_t count() const { return boxes.size(); }
  bool active(std::size_t flat) const { return dense_to_active[flat] >= 0; }
};

/// Active sets for every level 0..depth of a hierarchy.
struct ActiveLevels {
  int depth = -1;
  std::vector<LevelActiveSet> levels;

  std::size_t total_active() const {
    std::size_t t = 0;
    for (const LevelActiveSet& l : levels) t += l.count();
    return t;
  }
  std::size_t total_dense() const {
    std::size_t t = 0;
    for (int l = 0; l <= depth; ++l) t += std::size_t{1} << (3 * l);
    return t;
  }
  /// Fraction of level-l boxes that are active.
  double occupancy(int l) const {
    return static_cast<double>(levels[l].count()) /
           static_cast<double>(std::size_t{1} << (3 * l));
  }
  bool level_all_active(int l) const {
    return levels[l].count() == (std::size_t{1} << (3 * l));
  }
  /// Heap footprint of the stored sets (capacity, not size — the warm-solve
  /// growth check compares this across rebuilds).
  std::size_t capacity_bytes() const {
    std::size_t b = 0;
    for (const LevelActiveSet& l : levels)
      b += l.boxes.capacity() * sizeof(std::uint32_t) +
           l.dense_to_active.capacity() * sizeof(std::int32_t);
    return b;
  }
};

/// Builds the active sets of every level from the occupied LEAF flat
/// indices (any order, duplicates allowed): leaf active iff occupied,
/// internal box active iff any child active. `out`'s buffers are reused
/// across calls so a warm rebuild performs no heap growth.
void build_active_levels(const Hierarchy& hier,
                         std::span<const std::uint32_t> occupied_leaves,
                         ActiveLevels& out);

}  // namespace hfmm::tree
