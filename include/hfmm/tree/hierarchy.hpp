#pragma once
// The uniform hierarchy of boxes (paper Section 2.1, Figure 1).
//
// Level 0 is the whole cubic domain; level l+1 subdivides each level-l box
// into 8 children; the leaf level is h. A box is addressed by
// (level, ix, iy, iz) with 0 <= i* < 2^level, or by a flat index within its
// level in x-fastest order — the same order used to embed each level in the
// distributed potential arrays (Section 3.1, Figure 3).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hfmm/util/particles.hpp"
#include "hfmm/util/vec3.hpp"

namespace hfmm::tree {

/// Integer coordinates of a box at some level.
struct BoxCoord {
  std::int32_t ix = 0;
  std::int32_t iy = 0;
  std::int32_t iz = 0;

  friend constexpr bool operator==(const BoxCoord&, const BoxCoord&) = default;
};

/// Geometry of one hierarchy: the root cube plus the depth.
class Hierarchy {
 public:
  /// `root` must be a cube (use cube_containing() otherwise); depth >= 0.
  Hierarchy(const Box3& root, int depth);

  int depth() const { return depth_; }
  const Box3& root() const { return root_; }
  double root_side() const { return side_; }

  /// Number of boxes along each axis at `level`: 2^level.
  std::int32_t boxes_per_side(int level) const { return 1 << level; }
  /// Total boxes at `level`: 8^level.
  std::size_t boxes_at(int level) const {
    return static_cast<std::size_t>(1) << (3 * level);
  }
  /// Side length of a box at `level`.
  double side_at(int level) const { return side_ / boxes_per_side(level); }

  /// Flat index of a box within its level, x-fastest:
  /// index = (iz * 2^l + iy) * 2^l + ix.
  std::size_t flat_index(int level, const BoxCoord& c) const;
  BoxCoord coord_of(int level, std::size_t flat) const;

  /// Center of box (level, c).
  Vec3 center(int level, const BoxCoord& c) const;

  /// Leaf box containing point p (clamped to the domain).
  BoxCoord leaf_of(const Vec3& p) const;

  /// Parent coordinates of a box at `level` (level >= 1).
  static constexpr BoxCoord parent_of(const BoxCoord& c) {
    return {c.ix >> 1, c.iy >> 1, c.iz >> 1};
  }
  /// Child octant index in [0, 8): bit 0 = x, bit 1 = y, bit 2 = z.
  static constexpr int octant_of(const BoxCoord& c) {
    return (c.ix & 1) | ((c.iy & 1) << 1) | ((c.iz & 1) << 2);
  }
  /// Child coordinates for octant `o` of parent `p`.
  static constexpr BoxCoord child_of(const BoxCoord& p, int o) {
    return {2 * p.ix + (o & 1), 2 * p.iy + ((o >> 1) & 1),
            2 * p.iz + ((o >> 2) & 1)};
  }
  /// Displacement (in child-box side lengths) from parent center to the
  /// center of child octant `o`: components are +-1/2.
  static Vec3 octant_offset(int o) {
    return {(o & 1) ? 0.5 : -0.5, (o & 2) ? 0.5 : -0.5, (o & 4) ? 0.5 : -0.5};
  }

  bool in_bounds(int level, const BoxCoord& c) const;

 private:
  Box3 root_;
  double side_;
  int depth_;
};

/// Smallest cube containing `b`, centred on b's centre, padded by `pad`
/// relative side fraction so boundary particles land strictly inside.
Box3 cube_containing(const Box3& b, double pad = 1e-6);

/// The paper's optimal-depth rule (Section 2.3): pick h so the number of
/// leaf boxes 8^h is proportional to N, balancing hierarchy traversal
/// against near-field direct evaluation. `particles_per_leaf` is the target
/// average occupancy (the constant c in M = cN).
int optimal_depth(std::size_t n_particles, double particles_per_leaf);

}  // namespace hfmm::tree
