#pragma once
// Subtree ownership for the distributed executor (DESIGN.md Section 18).
//
// The partitioner splits the ACTIVE LEAVES (ascending flat order — which is
// the sorted-particle order) into R contiguous runs. Ownership of internal
// boxes follows the leaves upward: a box is owned by the owner of its first
// active child in octant order. Because the flat order is z-major exactly
// like the octant index (bit 2 of the octant is the z bit, which dominates
// the flat index), "first active octant" equals "lowest active child flat"
// WITHIN one parent. Across parents the owner map need not be monotone in
// the active index (a later parent's low-z child can precede an earlier
// parent's high-z child in leaf order), so a rank's owned set at an
// internal level is an ascending list, not necessarily a contiguous run —
// the LET builder collects it by scanning the owner map in active order.
// Every active box has exactly one owner; the root belongs to the rank
// owning the first active leaf.

#include <cstdint>
#include <span>
#include <vector>

#include "hfmm/tree/active_set.hpp"
#include "hfmm/tree/hierarchy.hpp"

namespace hfmm::tree {

/// Owner rank of every active box, per level. owner[l][ai] is the rank of
/// the box with ACTIVE index ai at level l.
struct OwnershipLevels {
  int depth = -1;
  int ranks = 1;
  std::vector<std::vector<std::int32_t>> owner;

  std::int32_t at(int level, std::int32_t active_index) const {
    return owner[static_cast<std::size_t>(level)]
                [static_cast<std::size_t>(active_index)];
  }
};

/// Builds per-level ownership from the leaf partition. `leaf_begin` has
/// R+1 entries: rank r owns active leaves [leaf_begin[r], leaf_begin[r+1])
/// of `act.levels[depth]` (ascending active-index runs covering all leaves).
void build_ownership(const Hierarchy& hier, const ActiveLevels& act,
                     std::span<const std::uint32_t> leaf_begin,
                     OwnershipLevels& out);

}  // namespace hfmm::tree
