#pragma once
// Near fields, interactive fields, and supernode lists (paper Sections 2.1,
// 2.3 and 3.3.2).
//
// With d-separation, the near field of a box is the (2d+1)^3 block of boxes
// within Chebyshev distance d (including itself). The interactive field of a
// child box is the part of its parent's near field (refined to child level)
// outside the child's own near field: 7(2d+1)^3 boxes for interior boxes —
// 875 for d = 2, 189 for d = 1.
//
// The offsets depend only on the child's octant parity: for octant component
// bit p (0 or 1) along an axis, interactive offsets span [-2d-d' + p, 2d+d'-1 + p]
// \ [-d, d] where the parent near field [-d..d] at parent scale maps to
// [-2d-p .. 2d+1-p]... — rather than reasoning in prose, generate_interactive_offsets
// constructs the set directly from the definition and is validated by tests
// against the paper's counts (875/189) and its stated union size (1206 for
// d = 2, offsets in [-5,5]^3 \ [-2,2]^3).

#include <array>
#include <cstdint>
#include <vector>

#include "hfmm/tree/hierarchy.hpp"

namespace hfmm::tree {

/// A relative box offset at one level.
struct Offset {
  std::int32_t dx = 0;
  std::int32_t dy = 0;
  std::int32_t dz = 0;

  friend constexpr bool operator==(const Offset&, const Offset&) = default;
  friend constexpr auto operator<=>(const Offset&, const Offset&) = default;
};

/// All offsets with max(|dx|,|dy|,|dz|) <= d — the near field, (2d+1)^3
/// entries including (0,0,0).
std::vector<Offset> near_field_offsets(int separation);

/// Near-field offsets excluding self, split into a half-list H such that
/// H and -H partition the 124 (d=2) neighbors: used by the Newton-3rd-law
/// symmetric near-field evaluation (paper Section 3.4, Figure 10).
std::vector<Offset> near_field_half_offsets(int separation);

/// Interactive-field offsets for a child in octant `octant` (0..7), at the
/// child's level, for the given separation d. From the definition: boxes
/// inside the parent's d-separation near field (refined to child level) and
/// outside the child's own d-separation near field.
std::vector<Offset> interactive_offsets(int octant, int separation);

/// The union of the 8 siblings' interactive fields (1206 offsets for d = 2,
/// spanning [-5,5]^3 \ [-2,2]^3). Table lookups for T2 matrices index into
/// the full [-2d-1, 2d+1]^3 cube of (4d+3)^3 = 1331 offsets (d=2), exactly
/// as the paper stores 1331 matrices for ease of indexing.
std::vector<Offset> sibling_union_offsets(int separation);

/// Dense index of an offset into the (4d+3)^3 cube used for T2 matrix lookup:
/// each component shifted by 2d+1, x-fastest.
std::size_t offset_cube_index(const Offset& o, int separation);
std::size_t offset_cube_size(int separation);

/// One entry of a supernode interaction list: either a same-level source box
/// (plain T2) or a parent-level source standing in for a complete 2x2x2
/// sibling octet (supernode T2 from the parent's outer sphere).
struct SupernodeEntry {
  Offset offset;        ///< in source-level box units, relative to the target
  int source_level_up;  ///< 0 = same level as target, 1 = parent level
};

/// Supernode interaction list for a child in `octant` with separation d = 2:
/// complete sibling octets whose parent is (at parent scale) far enough to be
/// accurate are replaced by their parent, reducing the entry count from 875
/// toward the paper's effective 189 (Section 2.3).
std::vector<SupernodeEntry> supernode_interactive(int octant, int separation);

}  // namespace hfmm::tree
