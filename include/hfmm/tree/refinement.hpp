#pragma once
// Adaptive per-box octree refinement (DESIGN.md Section 15).
//
// The paper's Section 2.3 occupancy rule picks ONE global leaf level, which
// assumes near-uniform inputs: on clustered distributions (Plummer cores)
// dense leaves pay O(n_leaf^2) direct work while the rest of the domain is
// over-refined. This header replaces the single leaf level with an
// ncrit-style LEAF FRONT over the full-depth sparse active sets
// (tree::ActiveLevels):
//   * a reachable box becomes a leaf when its subtree holds <= ncrit bodies
//     (or it sits at the refinement depth cap);
//   * boxes under a leaf are pruned; boxes above keep splitting;
//   * a 2:1-style balance pass splits any leaf whose direct (U-list)
//     partner would sit two or more levels deeper, so every adjacency pair
//     spans at most one level.
// The far field runs unchanged on the pruned tree (same-level interactive /
// supernode translations, V-list style); the near field becomes a U list of
// leaf-leaf adjacencies evaluated at the finer side (for_each_near_pair).
//
// The refinement threshold is picked by MINIMIZING MODELED COST — exact
// U-list pair counts plus translation counts per tree box — instead of mean
// occupancy (front_cost / select_ncrit / select_uniform_depth). All builders
// reuse the caller's buffers so warm solves perform no heap growth.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hfmm/tree/active_set.hpp"
#include "hfmm/tree/hierarchy.hpp"
#include "hfmm/tree/interaction_lists.hpp"

namespace hfmm::tree {

/// The non-uniform leaf front marked over a full-depth ActiveLevels. All
/// per-box arrays are aligned with the FULL active sets' active indices.
struct LeafFront {
  /// Box role in the refined tree.
  enum State : std::uint8_t {
    kBelow = 0,    ///< under a leaf — pruned from the refined tree
    kInternal = 1, ///< reachable, splits further (carries expansions only)
    kLeaf = 2,     ///< front leaf — owns its subtree's particles
  };

  int depth = -1;         ///< depth of the ActiveLevels the front was marked on
  int min_level = 2;      ///< shallowest level a leaf may occupy
  int max_leaf_level = 0; ///< deepest level holding a leaf
  int ncrit = 0;          ///< split threshold the front was built with

  /// Per level (0..depth), per active index: the box's State.
  std::vector<std::vector<std::uint8_t>> state;
  /// Per level, per active index: front leaf id, -1 when not a leaf.
  std::vector<std::vector<std::int32_t>> leaf_id;
  /// Canonical leaf enumeration, ascending (level, flat index) — the fixed
  /// evaluation order every near-field plan and reduction follows.
  std::vector<std::int32_t> leaf_level;
  std::vector<std::uint32_t> leaf_flat;

  std::size_t leaves() const { return leaf_flat.size(); }
  bool is_leaf(int level, std::size_t active_index) const {
    return state[static_cast<std::size_t>(level)][active_index] == kLeaf;
  }
  /// Heap footprint (capacity, not size) — warm-solve growth checks.
  std::size_t capacity_bytes() const;
};

/// Subtree body counts per active box: counts[l][active_index] = number of
/// particles in the box's subtree. `leaf_counts` is aligned with the DEEPEST
/// level's active list (act.levels[act.depth].boxes). Buffers are reused.
void build_subtree_counts(const Hierarchy& hier, const ActiveLevels& act,
                          std::span<const std::uint32_t> leaf_counts,
                          std::vector<std::vector<std::uint32_t>>& counts);

/// Marks the leaf front for `ncrit` over the full active sets: top-down
/// reachability, leaf when the subtree count drops to <= ncrit (or the box
/// sits at act.depth), then the balance ripple — any leaf with a direct
/// partner two or more levels deeper (a leaf within `near` offsets of the
/// partner's same-level ancestor) is split until every adjacency spans at
/// most one level. `counts` comes from build_subtree_counts; `near` is
/// tree::near_field_offsets(d). Deterministic; buffers reused across calls.
void build_leaf_front(const Hierarchy& hier, const ActiveLevels& act,
                      const std::vector<std::vector<std::uint32_t>>& counts,
                      int ncrit, int min_level, std::span<const Offset> near,
                      LeafFront& out);

/// The PRUNED active sets of the refined tree: every box that is a front
/// leaf or an ancestor of one (state != kBelow), depth = max_leaf_level.
/// `out_leaf` mirrors `out`'s active indices: 1 when the box is a front
/// leaf (the executor uses it to suppress supernode parent-level sources
/// whose pairs the U list already covers). Buffers reused.
void build_front_levels(const Hierarchy& hier, const ActiveLevels& act,
                        const LeafFront& front, ActiveLevels& out,
                        std::vector<std::vector<std::uint8_t>>& out_leaf);

/// Enumerates every U-list adjacency of the front exactly once, in the
/// canonical leaf order: fn(owner_leaf_id, source_level, source_active_index)
/// where the source is a front leaf of the FULL active sets. Same-level
/// pairs are emitted once via the half list (`near_half`,
/// tree::near_field_half_offsets(d)); coarse-fine pairs are owned by the
/// FINER side and reach exactly one level up (the balance pass guarantees
/// no wider gap). A leaf's own (self) pairs are implicit.
template <typename Fn>
void for_each_near_pair(const Hierarchy& hier, const ActiveLevels& act,
                        const LeafFront& front, std::span<const Offset> near,
                        std::span<const Offset> near_half, Fn&& fn) {
  for (std::size_t li = 0; li < front.leaves(); ++li) {
    const int l = front.leaf_level[li];
    const BoxCoord c = hier.coord_of(l, front.leaf_flat[li]);
    const LevelActiveSet& same = act.levels[static_cast<std::size_t>(l)];
    for (const Offset& o : near_half) {
      const BoxCoord nb{c.ix + o.dx, c.iy + o.dy, c.iz + o.dz};
      if (!hier.in_bounds(l, nb)) continue;
      const std::int32_t ai = same.dense_to_active[hier.flat_index(l, nb)];
      if (ai < 0 || !front.is_leaf(l, static_cast<std::size_t>(ai))) continue;
      fn(li, l, static_cast<std::uint32_t>(ai));
    }
    if (l - 1 >= front.min_level) {
      const BoxCoord p = Hierarchy::parent_of(c);
      const LevelActiveSet& up = act.levels[static_cast<std::size_t>(l - 1)];
      for (const Offset& o : near) {
        const BoxCoord nb{p.ix + o.dx, p.iy + o.dy, p.iz + o.dz};
        if (!hier.in_bounds(l - 1, nb)) continue;
        const std::int32_t ai =
            up.dense_to_active[hier.flat_index(l - 1, nb)];
        if (ai < 0 || !front.is_leaf(l - 1, static_cast<std::size_t>(ai)))
          continue;
        fn(li, l - 1, static_cast<std::uint32_t>(ai));
      }
    }
  }
}

/// Constants of the refinement cost model. The two tunables mirror the real
/// executors: a near-field particle pair costs pair_flops; a tree box costs
/// box_flops() of translation work (its V-list gemvs plus its share of the
/// upward/downward sweeps), shrinking when supernodes aggregate the list.
struct RefinementCostParams {
  std::size_t k = 12;
  bool supernodes = true;
  double pair_flops = 30.0;
  double box_flops() const {
    const double interactions = supernodes ? 40.0 : 150.0;
    return (interactions + 16.0) * 2.0 * static_cast<double>(k * k);
  }
};

/// Modeled cost of one leaf-front (or uniform-level) configuration.
struct RefinementCost {
  std::uint64_t near_pairs = 0;  ///< U-list particle pairs (unordered)
  std::uint64_t tree_boxes = 0;  ///< boxes carrying expansions
  double flops = 0.0;            ///< pair_flops * pairs + box_flops * boxes
};

/// Exact modeled cost of a marked front: near_pairs counts every intra-leaf
/// unordered pair plus every U-list adjacency pair (for_each_near_pair);
/// tree_boxes counts the pruned tree.
RefinementCost front_cost(const Hierarchy& hier, const ActiveLevels& act,
                          const std::vector<std::vector<std::uint32_t>>& counts,
                          const LeafFront& front, std::span<const Offset> near,
                          std::span<const Offset> near_half,
                          const RefinementCostParams& params);

/// Modeled cost of the UNIFORM front with every active level-`h` box a leaf
/// — what the single-leaf-level executors pay.
RefinementCost uniform_cost(const Hierarchy& hier, const ActiveLevels& act,
                            const std::vector<std::vector<std::uint32_t>>& counts,
                            int h, std::span<const Offset> near_half,
                            const RefinementCostParams& params);

/// Cost-model replacement for the Section 2.3 occupancy rule: the uniform
/// leaf level in [min_level, act.depth] minimizing uniform_cost (ties to
/// the shallower level). Agrees with optimal_depth() on uniform inputs and
/// goes deeper on clustered ones, where pair counts — not mean occupancy —
/// dominate.
int select_uniform_depth(const Hierarchy& hier, const ActiveLevels& act,
                         const std::vector<std::vector<std::uint32_t>>& counts,
                         std::span<const Offset> near_half,
                         const RefinementCostParams& params,
                         int min_level = 2);

/// Picks the ncrit from `candidates` whose marked front minimizes
/// front_cost (first minimum wins — deterministic). `scratch` holds the
/// candidate fronts; the caller re-marks the winner afterwards.
int select_ncrit(const Hierarchy& hier, const ActiveLevels& act,
                 const std::vector<std::vector<std::uint32_t>>& counts,
                 std::span<const Offset> near,
                 std::span<const Offset> near_half,
                 const RefinementCostParams& params,
                 std::span<const int> candidates, int min_level,
                 LeafFront& scratch);

}  // namespace hfmm::tree
